"""The log manager: group commit with durability callbacks (Section 3.4).

Committed transactions enter a flush queue; a flush pass serializes their
redo buffers to the log device in commit order, issues one fsync, and then
fires each transaction's durability callbacks.  Until then the rest of the
system treats the transaction as committed but *speculative* — results must
not reach the client.

The manager can run synchronously (every ``submit`` flushes — simplest for
tests), or with an explicit/periodic ``flush`` driven by a background
thread, which models group commit.

Failure atomicity
-----------------
``flush`` treats the whole batch as one unit: state mutation and
durability callbacks happen only after a fully successful fsync.  On any
device error the device is rewound to the last durable offset (dropping
partial bytes so a retry cannot leave torn records mid-log), the batch is
re-queued *in order ahead of* later submissions, nothing is counted
persisted, and no callback fires.  The background thread survives flush
failures with bounded exponential backoff; a persistent failure streak
(``degrade_after`` consecutive failures, or an un-rewindable device)
flips the engine into degraded read-only mode via the ``on_degrade`` hook
— see :class:`repro.errors.DegradedError` and ``Database.health()``.
"""

from __future__ import annotations

import io
import threading
from collections import deque
from time import perf_counter
from typing import BinaryIO, Callable

from repro.fault.crashpoints import crash_point
from repro.obs import trace
from repro.obs.recorder import Recorder, get_recorder
from repro.obs.registry import DEFAULT_SIZE_BUCKETS, STATE, MetricRegistry
from repro.txn.context import TransactionContext
from repro.wal.records import LogMarker, encode_transaction

#: Anything the flush queue accepts: a committed transaction (encoded at
#: flush time) or a pre-encoded 2PC marker (PREPARE / DECISION record).
LogEntry = TransactionContext | LogMarker


class LogManager:
    """Serializes redo buffers and signals durability."""

    def __init__(
        self,
        device: BinaryIO | None = None,
        synchronous: bool = True,
        registry: MetricRegistry | None = None,
        degrade_after: int = 5,
        recorder: Recorder | None = None,
    ) -> None:
        #: The "disk": any binary file-like object.
        self.device = device if device is not None else io.BytesIO()
        self.synchronous = synchronous
        self._queue: deque[LogEntry] = deque()
        #: Guards the queue and the persisted-state counters (never held
        #: across device I/O — commits must not stall behind an fsync).
        self._lock = threading.Lock()
        #: Serializes flushers so concurrent ``flush`` calls cannot
        #: interleave device writes or reorder the log.  Reentrant so a
        #: durability callback may call back into the manager.
        self._io_lock = threading.RLock()
        self.flush_count = 0
        self.bytes_written = 0
        self.transactions_persisted = 0
        #: Device offset up to which the log is known durable; flush
        #: failures rewind (seek + truncate) to here before retrying.
        self._durable_offset = 0
        self.flush_failures = 0
        self.consecutive_flush_failures = 0
        #: Consecutive-failure threshold that trips degraded mode.
        self.degrade_after = degrade_after
        self.degraded = False
        self.degraded_reason: str | None = None
        #: Called once, with a reason string, when the manager degrades.
        self.on_degrade: Callable[[str], None] | None = None
        #: Exception from the background thread's final drain, surfaced by
        #: ``Database.close()``.
        self.last_flush_error: BaseException | None = None
        #: ``perf_counter()`` of the last successful fsync; ``None`` until
        #: the first one.  ``last_fsync_age_seconds`` and the health report
        #: derive the staleness operators alert on.
        self.last_fsync_at: float | None = None
        self._created_at = perf_counter()
        self._background: threading.Thread | None = None
        self._stop = threading.Event()
        self.recorder = recorder if recorder is not None else get_recorder()
        self.registry = registry if registry is not None else MetricRegistry()
        reg = self.registry
        self._m_flush_total = reg.counter("wal.flush_total", "non-empty flush passes")
        self._m_flush_failures = reg.counter(
            "wal.flush_failures_total", "flush passes failed by device errors"
        )
        self._m_callback_errors = reg.counter(
            "wal.callback_errors_total", "durability callbacks that raised"
        )
        self._m_written_bytes = reg.counter("wal.written_bytes", "log bytes persisted")
        self._m_persisted_total = reg.counter(
            "wal.txns_persisted_total", "transactions made durable"
        )
        self._m_flush_seconds = reg.histogram(
            "wal.flush_seconds", "serialize + fsync latency per flush"
        )
        self._m_batch_size = reg.histogram(
            "wal.group_commit_batch",
            "transactions per group-commit flush",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        reg.gauge(
            "wal.pending",
            "transactions enqueued but not yet persisted",
            callback=lambda: self.pending_count,
        )
        reg.gauge(
            "wal.healthy",
            "1 while the log device works, 0 once degraded",
            callback=lambda: 0.0 if self.degraded else 1.0,
        )
        reg.gauge(
            "wal.consecutive_flush_failures",
            "current flush failure streak",
            callback=lambda: self.consecutive_flush_failures,
        )
        reg.gauge(
            "wal.last_fsync_age_seconds",
            "seconds since the last successful fsync (since startup if none yet)",
            callback=lambda: self.last_fsync_age_seconds
            if self.last_fsync_at is not None
            else perf_counter() - self._created_at,
        )

    @property
    def last_fsync_age_seconds(self) -> float | None:
        """Seconds since the last successful fsync (``None`` until one)."""
        if self.last_fsync_at is None:
            return None
        return perf_counter() - self.last_fsync_at

    def submit(self, txn: LogEntry) -> None:
        """Enqueue a committed transaction (or a pre-encoded 2PC marker,
        see :class:`repro.wal.records.LogMarker`) for flushing."""
        with self._lock:
            self._queue.append(txn)
        if self.synchronous:
            self.flush()

    def flush(self) -> int:
        """Serialize and fsync everything queued; returns txns persisted.

        Read-only transactions produce no log bytes but still have their
        callbacks processed — the paper requires them to pass through the
        commit-record protocol to avoid the speculative-read anomaly.

        Failure-atomic: on a device error the batch is re-queued in commit
        order (ahead of transactions submitted meanwhile), the device is
        rewound to the last durable offset, no state is mutated, no
        callback fires, and the error propagates to the caller.
        """
        began = perf_counter() if STATE.enabled else 0.0
        with self._io_lock:
            with self._lock:
                if not self._queue:
                    return 0
                batch, self._queue = list(self._queue), deque()
            try:
                with trace.span("wal.group_commit"):
                    flushed_bytes = 0
                    for txn in batch:
                        raw = (
                            txn.payload
                            if isinstance(txn, LogMarker)
                            else encode_transaction(txn)
                        )
                        if raw:
                            self.device.write(raw)
                            flushed_bytes += len(raw)
                    crash_point("wal.flush.pre_fsync")
                    fsync_began = perf_counter()
                    self.device.flush()  # the fsync boundary
                    fsync_seconds = perf_counter() - fsync_began
                    crash_point("wal.flush.post_fsync")
            except Exception as exc:
                self._recover_from_flush_failure(batch, exc)
                raise
            # Success: only now does anything count as persisted.
            self._durable_offset += flushed_bytes
            self.consecutive_flush_failures = 0
            self.last_fsync_at = perf_counter()
            self.recorder.record(
                "wal.fsync",
                offset=self._durable_offset,
                bytes=flushed_bytes,
                fsync_seconds=fsync_seconds,
            )
            with self._lock:
                self.bytes_written += flushed_bytes
                self.flush_count += 1
                self.transactions_persisted += len(batch)
            for txn in batch:
                try:
                    txn.signal_durable()
                except Exception:
                    # A client callback failing must not block the rest of
                    # the batch (or the flusher); the count is observable.
                    self._m_callback_errors.inc()
        if began:
            self._m_flush_total.inc()
            self._m_written_bytes.inc(flushed_bytes)
            self._m_persisted_total.inc(len(batch))
            self._m_batch_size.observe(len(batch))
            self._m_flush_seconds.observe(perf_counter() - began)
            self.recorder.record(
                "wal.flush",
                txns=len(batch),
                bytes=flushed_bytes,
                duration_seconds=perf_counter() - began,
            )
        return len(batch)

    def _recover_from_flush_failure(
        self, batch: list[LogEntry], exc: Exception
    ) -> None:
        """Restore the pre-flush state after a device error.

        Re-queues the batch in order ahead of later submissions and rewinds
        the device to the last durable offset so partial bytes cannot
        corrupt the log on retry.  An un-rewindable device (no seek support,
        or the rewind itself failing) poisons the log permanently —
        degraded mode trips immediately.
        """
        with self._lock:
            self._queue.extendleft(reversed(batch))
        self.flush_failures += 1
        self.consecutive_flush_failures += 1
        self._m_flush_failures.inc()
        self.recorder.record(
            "wal.flush_failure",
            txns=len(batch),
            streak=self.consecutive_flush_failures,
            error=repr(exc),
        )
        rewound = False
        try:
            if hasattr(self.device, "seek") and hasattr(self.device, "truncate"):
                self.device.seek(self._durable_offset)
                self.device.truncate(self._durable_offset)
                rewound = True
        except Exception:
            rewound = False
        if not rewound:
            self._enter_degraded(f"log device unrewindable after {exc!r}")
        elif self.consecutive_flush_failures >= self.degrade_after:
            self._enter_degraded(
                f"{self.consecutive_flush_failures} consecutive flush failures, "
                f"last: {exc!r}"
            )

    def _enter_degraded(self, reason: str) -> None:
        if self.degraded:
            return
        self.degraded = True
        self.degraded_reason = reason
        self.recorder.record("wal.degraded", reason=reason)
        hook = self.on_degrade
        if hook is not None:
            hook(reason)

    @property
    def pending_count(self) -> int:
        """Transactions enqueued but not yet persisted."""
        return len(self._queue)

    # ------------------------------------------------------------------ #
    # background group commit                                             #
    # ------------------------------------------------------------------ #

    def start_background(self, interval: float = 0.005, max_backoff: float = 0.5) -> None:
        """Run ``flush`` every ``interval`` seconds on a daemon thread.

        The thread survives flush failures: each consecutive failure doubles
        the wait (bounded by ``max_backoff``) so a struggling device is not
        hammered, and the first success resets the cadence.
        """
        if self._background is not None:
            return
        self.synchronous = False
        self._stop.clear()

        def _loop() -> None:
            delay = interval
            while not self._stop.wait(delay):
                try:
                    self.flush()
                except Exception:
                    # Counted inside flush(); the batch is re-queued.
                    delay = min(max_backoff, delay * 2 if delay > 0 else interval)
                    continue
                delay = interval
            try:
                self.flush()
                self.last_flush_error = None
            except Exception as exc:
                self.last_flush_error = exc

        self._background = threading.Thread(target=_loop, daemon=True, name="log-manager")
        self._background.start()

    def stop_background(self) -> None:
        """Stop the background thread, flushing whatever remains.

        Idempotent, and safe to call from the background thread itself
        (e.g. from a durability callback): in that case the stop flag is
        set and the loop exits after the current pass instead of
        deadlocking on a self-join.  A final failed drain is recorded in
        ``last_flush_error`` (surfaced by ``Database.close()``), not
        raised here.
        """
        thread = self._background
        if thread is None:
            return
        self._stop.set()
        self._background = None
        if thread is threading.current_thread():
            return
        thread.join()

    def truncate(self, device: BinaryIO | None = None) -> None:
        """Replace the log device and zero the byte accounting (used by
        checkpointing, which makes the pre-checkpoint log obsolete)."""
        self.device = device if device is not None else io.BytesIO()
        self.bytes_written = 0
        self._durable_offset = 0
        self._m_written_bytes.reset()

    def contents(self) -> bytes:
        """The full log image (only for in-memory devices).

        Accepts a raw ``io.BytesIO`` or any wrapper exposing ``image()``
        (e.g. :class:`repro.fault.FaultyDevice`).
        """
        if isinstance(self.device, io.BytesIO):
            return self.device.getvalue()
        image = getattr(self.device, "image", None)
        if callable(image):
            return image()
        raise TypeError("contents() requires an in-memory log device")
