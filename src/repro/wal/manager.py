"""The log manager: group commit with durability callbacks (Section 3.4).

Committed transactions enter a flush queue; a flush pass serializes their
redo buffers to the log device in commit order, issues one fsync, and then
fires each transaction's durability callbacks.  Until then the rest of the
system treats the transaction as committed but *speculative* — results must
not reach the client.

The manager can run synchronously (every ``submit`` flushes — simplest for
tests), or with an explicit/periodic ``flush`` driven by a background
thread, which models group commit.
"""

from __future__ import annotations

import io
import threading
from collections import deque
from typing import BinaryIO

from repro.txn.context import TransactionContext
from repro.wal.records import encode_transaction


class LogManager:
    """Serializes redo buffers and signals durability."""

    def __init__(
        self,
        device: BinaryIO | None = None,
        synchronous: bool = True,
    ) -> None:
        #: The "disk": any binary file-like object.
        self.device = device if device is not None else io.BytesIO()
        self.synchronous = synchronous
        self._queue: deque[TransactionContext] = deque()
        self._lock = threading.Lock()
        self.flush_count = 0
        self.bytes_written = 0
        self.transactions_persisted = 0
        self._background: threading.Thread | None = None
        self._stop = threading.Event()

    def submit(self, txn: TransactionContext) -> None:
        """Enqueue a committed transaction's redo buffer for flushing."""
        with self._lock:
            self._queue.append(txn)
        if self.synchronous:
            self.flush()

    def flush(self) -> int:
        """Serialize and fsync everything queued; returns txns persisted.

        Read-only transactions produce no log bytes but still have their
        callbacks processed — the paper requires them to pass through the
        commit-record protocol to avoid the speculative-read anomaly.
        """
        with self._lock:
            batch, self._queue = list(self._queue), deque()
            if not batch:
                return 0
            for txn in batch:
                raw = encode_transaction(txn)
                if raw:
                    self.device.write(raw)
                    self.bytes_written += len(raw)
            self.device.flush()  # the fsync boundary
            self.flush_count += 1
            self.transactions_persisted += len(batch)
        for txn in batch:
            txn.signal_durable()
        return len(batch)

    @property
    def pending_count(self) -> int:
        """Transactions enqueued but not yet persisted."""
        return len(self._queue)

    # ------------------------------------------------------------------ #
    # background group commit                                             #
    # ------------------------------------------------------------------ #

    def start_background(self, interval: float = 0.005) -> None:
        """Run ``flush`` every ``interval`` seconds on a daemon thread."""
        if self._background is not None:
            return
        self.synchronous = False
        self._stop.clear()

        def _loop() -> None:
            while not self._stop.wait(interval):
                self.flush()
            self.flush()

        self._background = threading.Thread(target=_loop, daemon=True, name="log-manager")
        self._background.start()

    def stop_background(self) -> None:
        """Stop the background thread, flushing whatever remains."""
        if self._background is None:
            return
        self._stop.set()
        self._background.join()
        self._background = None

    def contents(self) -> bytes:
        """The full log image (only for in-memory devices)."""
        if isinstance(self.device, io.BytesIO):
            return self.device.getvalue()
        raise TypeError("contents() requires an in-memory log device")
