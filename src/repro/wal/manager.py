"""The log manager: group commit with durability callbacks (Section 3.4).

Committed transactions enter a flush queue; a flush pass serializes their
redo buffers to the log device in commit order, issues one fsync, and then
fires each transaction's durability callbacks.  Until then the rest of the
system treats the transaction as committed but *speculative* — results must
not reach the client.

The manager can run synchronously (every ``submit`` flushes — simplest for
tests), or with an explicit/periodic ``flush`` driven by a background
thread, which models group commit.
"""

from __future__ import annotations

import io
import threading
from collections import deque
from time import perf_counter
from typing import BinaryIO

from repro.obs import trace
from repro.obs.registry import DEFAULT_SIZE_BUCKETS, STATE, MetricRegistry
from repro.txn.context import TransactionContext
from repro.wal.records import encode_transaction


class LogManager:
    """Serializes redo buffers and signals durability."""

    def __init__(
        self,
        device: BinaryIO | None = None,
        synchronous: bool = True,
        registry: MetricRegistry | None = None,
    ) -> None:
        #: The "disk": any binary file-like object.
        self.device = device if device is not None else io.BytesIO()
        self.synchronous = synchronous
        self._queue: deque[TransactionContext] = deque()
        self._lock = threading.Lock()
        self.flush_count = 0
        self.bytes_written = 0
        self.transactions_persisted = 0
        self._background: threading.Thread | None = None
        self._stop = threading.Event()
        self.registry = registry if registry is not None else MetricRegistry()
        reg = self.registry
        self._m_flush_total = reg.counter("wal.flush_total", "non-empty flush passes")
        self._m_written_bytes = reg.counter("wal.written_bytes", "log bytes persisted")
        self._m_persisted_total = reg.counter(
            "wal.txns_persisted_total", "transactions made durable"
        )
        self._m_flush_seconds = reg.histogram(
            "wal.flush_seconds", "serialize + fsync latency per flush"
        )
        self._m_batch_size = reg.histogram(
            "wal.group_commit_batch",
            "transactions per group-commit flush",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        reg.gauge(
            "wal.pending",
            "transactions enqueued but not yet persisted",
            callback=lambda: self.pending_count,
        )

    def submit(self, txn: TransactionContext) -> None:
        """Enqueue a committed transaction's redo buffer for flushing."""
        with self._lock:
            self._queue.append(txn)
        if self.synchronous:
            self.flush()

    def flush(self) -> int:
        """Serialize and fsync everything queued; returns txns persisted.

        Read-only transactions produce no log bytes but still have their
        callbacks processed — the paper requires them to pass through the
        commit-record protocol to avoid the speculative-read anomaly.
        """
        began = perf_counter() if STATE.enabled else 0.0
        with self._lock:
            batch, self._queue = list(self._queue), deque()
            if not batch:
                return 0
            flushed_bytes = 0
            with trace.span("wal.group_commit"):
                for txn in batch:
                    raw = encode_transaction(txn)
                    if raw:
                        self.device.write(raw)
                        flushed_bytes += len(raw)
                self.device.flush()  # the fsync boundary
            self.bytes_written += flushed_bytes
            self.flush_count += 1
            self.transactions_persisted += len(batch)
        for txn in batch:
            txn.signal_durable()
        if began:
            self._m_flush_total.inc()
            self._m_written_bytes.inc(flushed_bytes)
            self._m_persisted_total.inc(len(batch))
            self._m_batch_size.observe(len(batch))
            self._m_flush_seconds.observe(perf_counter() - began)
        return len(batch)

    @property
    def pending_count(self) -> int:
        """Transactions enqueued but not yet persisted."""
        return len(self._queue)

    # ------------------------------------------------------------------ #
    # background group commit                                             #
    # ------------------------------------------------------------------ #

    def start_background(self, interval: float = 0.005) -> None:
        """Run ``flush`` every ``interval`` seconds on a daemon thread."""
        if self._background is not None:
            return
        self.synchronous = False
        self._stop.clear()

        def _loop() -> None:
            while not self._stop.wait(interval):
                self.flush()
            self.flush()

        self._background = threading.Thread(target=_loop, daemon=True, name="log-manager")
        self._background.start()

    def stop_background(self) -> None:
        """Stop the background thread, flushing whatever remains."""
        if self._background is None:
            return
        self._stop.set()
        self._background.join()
        self._background = None

    def truncate(self, device: BinaryIO | None = None) -> None:
        """Replace the log device and zero the byte accounting (used by
        checkpointing, which makes the pre-checkpoint log obsolete)."""
        self.device = device if device is not None else io.BytesIO()
        self.bytes_written = 0
        self._m_written_bytes.reset()

    def contents(self) -> bytes:
        """The full log image (only for in-memory devices)."""
        if isinstance(self.device, io.BytesIO):
            return self.device.getvalue()
        raise TypeError("contents() requires an in-memory log device")
