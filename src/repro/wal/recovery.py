"""Crash recovery: replay the write-ahead log into fresh tables.

Transactions whose commit record never reached the log are absent from the
stream by construction (the encoder emits nothing until commit), so replay
is a straight forward pass in commit order.  Physical tuple slots from the
previous incarnation are remapped as inserts re-allocate storage.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.errors import RecoveryError
from repro.storage.data_table import DataTable
from repro.storage.tuple_slot import TupleSlot
from repro.txn.manager import TransactionManager
from repro.wal.records import LoggedOperation, decode_stream, decode_with_indoubt


class RecoveryManager:
    """Rebuilds table contents from a serialized log."""

    def __init__(
        self,
        txn_manager: TransactionManager,
        table_resolver: Callable[[str], DataTable] | Mapping[str, DataTable],
    ) -> None:
        self.txn_manager = txn_manager
        if callable(table_resolver):
            self._resolve = table_resolver
        else:
            tables = dict(table_resolver)

            def _lookup(name: str) -> DataTable:
                try:
                    return tables[name]
                except KeyError:
                    raise RecoveryError(f"log references unknown table {name!r}") from None

            self._resolve = _lookup
        #: Old slot → new slot, per table (slots shift across incarnations).
        self.slot_map: dict[tuple[str, TupleSlot], TupleSlot] = {}
        self.transactions_replayed = 0
        self.operations_replayed = 0

    def replay(self, raw: bytes, tolerate_torn_tail: bool = False) -> int:
        """Apply every committed transaction in ``raw``; returns the count.

        ``tolerate_torn_tail=True`` drops a truncated final transaction
        (a crash mid-flush): its commit never became durable.
        """
        for logged in decode_stream(raw, tolerate_torn_tail=tolerate_torn_tail):
            self.apply_operations(logged.operations)
        return self.transactions_replayed

    def replay_with_indoubt(
        self, raw: bytes, tolerate_torn_tail: bool = True
    ) -> tuple[int, dict[str, list[LoggedOperation]]]:
        """Replay committed transactions and surface in-doubt prepares.

        Returns ``(committed_count, {gid: operations})`` where the mapping
        holds every prepared-but-undecided transaction in log order.  The
        caller resolves each against the coordinator log: a commit decision
        is applied via :meth:`apply_operations` (the retained ``slot_map``
        makes the prepared operations' old slots resolvable); anything
        else is presumed aborted and simply never applied.
        """
        committed, indoubt = decode_with_indoubt(
            raw, tolerate_torn_tail=tolerate_torn_tail
        )
        for logged in committed:
            self.apply_operations(logged.operations)
        return self.transactions_replayed, {
            prepare.gid: prepare.operations for prepare in indoubt
        }

    def apply_operations(self, operations: list[LoggedOperation]) -> None:
        """Apply one logged transaction's operations in a fresh commit."""
        txn = self.txn_manager.begin()
        for op in operations:
            table = self._resolve(op.table_name)
            key = (op.table_name, op.slot)
            if op.op == "insert":
                new_slot = table.insert(txn, op.values)
                self.slot_map[key] = new_slot
            elif op.op == "update":
                if not table.update(txn, self._mapped(key), op.values):
                    raise RecoveryError(
                        f"conflict replaying update of {op.slot} — the log "
                        "is not in commit order"
                    )
            elif op.op == "delete":
                if not table.delete(txn, self._mapped(key)):
                    raise RecoveryError(f"conflict replaying delete of {op.slot}")
            else:
                raise RecoveryError(f"unknown logged op {op.op!r}")
            self.operations_replayed += 1
        self.txn_manager.commit(txn)
        self.transactions_replayed += 1

    def _mapped(self, key: tuple[str, TupleSlot]) -> TupleSlot:
        try:
            return self.slot_map[key]
        except KeyError:
            raise RecoveryError(
                f"log touches {key[1]} of table {key[0]!r} before inserting it; "
                "recovery requires a log that starts from an empty database "
                "(or a checkpoint, which this reproduction loads separately)"
            ) from None
