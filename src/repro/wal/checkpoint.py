"""Checkpoints: bounded-log recovery (Section 3.4).

The paper achieves durability "through write-ahead logging and
checkpoints".  A checkpoint here is a consistent snapshot of every table,
serialized as Arrow IPC streams with one extra ``__slot`` column recording
each tuple's physical TupleSlot.  Recovery loads the checkpoint (seeding
the old-slot → new-slot map) and then replays the log suffix, so updates
and deletes that reference pre-checkpoint tuples resolve correctly.

Checkpointing is quiescent: the caller must ensure no concurrent writers
(the Database facade flushes the log, snapshots, then truncates).  Fuzzy
checkpoints are out of scope for the paper and for this reproduction.
"""

from __future__ import annotations

import io
import struct
from typing import TYPE_CHECKING

from repro.arrowfmt import ipc
from repro.arrowfmt.builder import FixedSizeBuilder, VarBinaryBuilder
from repro.fault.crashpoints import crash_point
from repro.arrowfmt.datatypes import Field, FixedWidthType, INT64, Schema
from repro.arrowfmt.table import RecordBatch, Table
from repro.errors import RecoveryError
from repro.storage.tuple_slot import TupleSlot
from repro.wal.recovery import RecoveryManager

if TYPE_CHECKING:
    from repro.db import Database

MAGIC = b"RCKPT1\x00\x00"
_SLOT_COLUMN = "__slot"


def write_checkpoint(db: "Database") -> bytes:
    """Serialize a consistent snapshot of every catalog table."""
    out = io.BytesIO()
    out.write(MAGIC)
    txn = db.begin()
    tables = db.catalog.data_tables()
    out.write(struct.pack("<I", len(tables)))
    for name, table in tables.items():
        crash_point("checkpoint.write")
        raw_name = name.encode("utf-8")
        out.write(struct.pack("<H", len(raw_name)))
        out.write(raw_name)
        stream = _table_snapshot_stream(db, txn, table)
        out.write(struct.pack("<q", len(stream)))
        out.write(stream)
    db.commit(txn)
    return out.getvalue()


def _table_snapshot_stream(db: "Database", txn, table) -> bytes:
    layout = table.layout
    fields = [Field(_SLOT_COLUMN, INT64, nullable=False)]
    builders = [FixedSizeBuilder(INT64)]
    for spec in layout.columns:
        fields.append(Field(spec.name, spec.dtype, nullable=True))
        if isinstance(spec.dtype, FixedWidthType):
            builders.append(FixedSizeBuilder(spec.dtype))
        else:
            builders.append(VarBinaryBuilder(spec.dtype))
    for slot, row in table.scan(txn):
        builders[0].append(slot.pack())
        for column_id in range(layout.num_columns):
            builders[column_id + 1].append(row.get(column_id))
    schema = Schema(fields)
    batch = RecordBatch(schema, [b.finish() for b in builders])
    return ipc.write_table(Table(schema, [batch]))


def load_checkpoint(db: "Database", raw: bytes) -> RecoveryManager:
    """Load a checkpoint into a fresh database (tables must exist).

    Returns a :class:`RecoveryManager` whose slot map is seeded with the
    checkpoint's tuples, ready to replay the log suffix.
    """
    stream = io.BytesIO(raw)
    if stream.read(len(MAGIC)) != MAGIC:
        raise RecoveryError("not a checkpoint stream")
    (table_count,) = struct.unpack("<I", _read(stream, 4))
    recovery = RecoveryManager(db.txn_manager, db.catalog.data_tables())
    for _ in range(table_count):
        (name_len,) = struct.unpack("<H", _read(stream, 2))
        name = _read(stream, name_len).decode("utf-8")
        (stream_len,) = struct.unpack("<q", _read(stream, 8))
        arrow_table = ipc.read_table(_read(stream, stream_len))
        _load_table(db, recovery, name, arrow_table)
    return recovery


def _load_table(db: "Database", recovery: RecoveryManager, name: str, arrow_table: Table) -> None:
    try:
        table = db.catalog.table(name)
    except Exception as exc:
        raise RecoveryError(f"checkpoint references unknown table {name!r}") from exc
    column_names = arrow_table.schema.names
    if column_names[0] != _SLOT_COLUMN:
        raise RecoveryError("checkpoint table stream missing the slot column")
    expected = [_SLOT_COLUMN] + [spec.name for spec in table.layout.columns]
    if column_names != expected:
        raise RecoveryError(
            f"checkpoint schema for {name!r} does not match the catalog: "
            f"{column_names} vs {expected}"
        )
    txn = db.begin()
    for row in arrow_table.iter_rows():
        old_slot = TupleSlot.unpack(row[0])
        values = dict(enumerate(row[1:]))
        new_slot = table.insert(txn, values)
        recovery.slot_map[(name, old_slot)] = new_slot
    db.commit(txn)


def recover(db: "Database", checkpoint: bytes, log_suffix: bytes) -> int:
    """Full recovery: checkpoint, then log replay; returns txns replayed."""
    recovery = load_checkpoint(db, checkpoint)
    return recovery.replay(log_suffix)


def _read(stream: io.BytesIO, n: int) -> bytes:
    raw = stream.read(n)
    if len(raw) != n:
        raise RecoveryError("truncated checkpoint stream")
    return raw
