"""Write-ahead logging and recovery (Section 3.4).

Transactions append physical after-images to private redo buffers; at
commit the sealed buffer joins the log manager's flush queue.  The log
manager serializes buffers in commit order (no log sequence numbers — order
is implied by commit timestamps), fsyncs in groups, and then invokes each
transaction's durability callback.  A transaction is *speculatively*
committed the moment its commit record is enqueued, but its results are not
published to the client until the callback fires.
"""

from repro.wal.records import (
    decode_entries,
    decode_stream,
    decode_with_indoubt,
    encode_decision,
    encode_prepare,
    encode_transaction,
    LogMarker,
    LoggedDecision,
    LoggedOperation,
    LoggedPrepare,
    LoggedTransaction,
)
from repro.wal.manager import LogManager
from repro.wal.recovery import RecoveryManager

__all__ = [
    "LogManager",
    "LogMarker",
    "LoggedDecision",
    "LoggedOperation",
    "LoggedPrepare",
    "LoggedTransaction",
    "RecoveryManager",
    "decode_entries",
    "decode_stream",
    "decode_with_indoubt",
    "encode_decision",
    "encode_prepare",
    "encode_transaction",
]
