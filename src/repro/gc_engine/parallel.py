"""Parallel garbage collection (Section 4.4, "Scaling Transformation and GC").

For high-throughput workloads a single GC thread cannot keep up.  The paper
partitions GC work by *transaction*: each finished transaction's clean-up
is handed to one of several GC threads.  Pruning a version chain is
thread-safe, but two threads pruning the same chain would race to
deallocate parts of each other's path and duplicate work — so a thread
*marks the head* of a chain it is pruning, and other threads back off.

This implementation reproduces that protocol with real threads: chains are
claimed through a per-block mark table under the block's write latch, and
deallocation is funneled through the shared deferred-action queue.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.errors import StorageError
from repro.gc_engine.collector import GarbageCollector

if TYPE_CHECKING:
    from repro.txn.context import TransactionContext
    from repro.txn.manager import TransactionManager


class ParallelGarbageCollector(GarbageCollector):
    """A GC whose unlink phase fans out across worker threads."""

    def __init__(
        self,
        txn_manager: "TransactionManager",
        access_observer=None,
        num_threads: int = 2,
        registry=None,
    ) -> None:
        super().__init__(txn_manager, access_observer, registry=registry)
        if num_threads < 1:
            raise ValueError("need at least one GC thread")
        self.num_threads = num_threads
        #: (block id, slot offset) pairs currently being pruned — the
        #: chain-head marks that make threads back off each other.
        self._chain_marks: set[tuple[int, int]] = set()
        self._marks_lock = threading.Lock()
        self.backoffs = 0

    def run(self) -> int:
        """One parallel GC pass; returns records unlinked."""
        from time import perf_counter

        from repro.obs.registry import STATE

        began = perf_counter() if STATE.enabled else 0.0
        self.epoch += 1
        horizon = self.txn_manager.oldest_active_start()
        deferred_run = self.deferred.process(horizon, on_error=self._on_deferred_error)
        self.stats.deferred_executed += deferred_run
        completed = self.txn_manager.drain_completed(horizon)
        if not completed:
            if self.access_observer is not None:
                self.access_observer.on_gc_pass(self.epoch)
            self.stats.passes += 1
            self._record_pass(began, 0, 0, deferred_run)
            return 0

        # Partition by transaction (the paper's load-balancing unit).
        shards: list[list["TransactionContext"]] = [
            completed[i :: self.num_threads] for i in range(self.num_threads)
        ]
        unlinked_counts = [0] * self.num_threads
        touched: list[dict[int, object]] = [dict() for _ in range(self.num_threads)]
        threads = [
            threading.Thread(
                target=self._worker,
                args=(shard, unlinked_counts, touched, i),
                name=f"gc-{i}",
            )
            for i, shard in enumerate(shards)
            if shard
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        all_touched: dict[int, object] = {}
        for shard_touched in touched:
            all_touched.update(shard_touched)
        if self.access_observer is not None:
            for block in all_touched.values():
                block.last_modified_epoch = self.epoch  # type: ignore[attr-defined]
                self.access_observer.observe_modification(block, self.epoch)
            self.access_observer.on_gc_pass(self.epoch)
        self.stats.passes += 1
        total = sum(unlinked_counts)
        self.stats.records_unlinked += total
        self.stats.transactions_processed += len(completed)
        self._record_pass(began, total, len(completed), deferred_run)
        return total

    def _worker(self, shard, unlinked_counts, touched, index: int) -> None:
        count = 0
        for txn in shard:
            unlink_ts = self.txn_manager.timestamps.checkpoint()
            for record in txn.undo_buffer:
                try:
                    block = record.table._block(record.slot.block_id)
                except StorageError:
                    continue
                key = (block.block_id, record.slot.offset)
                if not self._claim(key):
                    # Another thread is pruning this chain; back off — the
                    # record will be reached next pass (or is already gone).
                    self.backoffs += 1
                    self._requeue(txn, record, unlink_ts)
                    continue
                try:
                    self._unlink(block, record)
                    count += 1
                    action = self._deallocation_for(block, record)
                    if action is not None:
                        self.deferred.register(unlink_ts, action)
                finally:
                    self._release(key)
                touched[index][block.block_id] = block
        unlinked_counts[index] = count

    def _claim(self, key: tuple[int, int]) -> bool:
        with self._marks_lock:
            if key in self._chain_marks:
                return False
            self._chain_marks.add(key)
            return True

    def _release(self, key: tuple[int, int]) -> None:
        with self._marks_lock:
            self._chain_marks.discard(key)

    def _requeue(self, txn, record, unlink_ts: int) -> None:
        """Defer a backed-off record's unlink to the action queue so it is
        still processed exactly once."""

        def _retry() -> None:
            from repro.errors import StorageError as _SE

            try:
                block = record.table._block(record.slot.block_id)
            except _SE:
                return
            self._unlink(block, record)
            action = self._deallocation_for(block, record)
            if action is not None:
                action()

        self.deferred.register(unlink_ts, _retry)
