"""Garbage collection: version-chain pruning and epoch protection.

Section 3.3's two-phase design: a GC pass first *unlinks* delta records that
no active transaction can see (truncating each chain exactly once), then
*deallocates* them one epoch later, once every transaction alive at unlink
time has finished.  The same deferred-action mechanism generalizes to the
transformation pipeline's memory reclamation (Section 4.4).
"""

from repro.gc_engine.epoch import DeferredActionQueue
from repro.gc_engine.collector import GarbageCollector
from repro.gc_engine.parallel import ParallelGarbageCollector

__all__ = ["DeferredActionQueue", "GarbageCollector", "ParallelGarbageCollector"]
