"""The two-phase garbage collector (Section 3.3).

Because all versioning information lives in transaction-private undo
buffers, the collector only ever examines transaction objects.  Each pass:

1. computes the visibility horizon (oldest active start timestamp),
2. runs deferred deallocations whose unlink epoch has safely passed,
3. drains completed transactions below the horizon and unlinks their delta
   records from the version chains (each chain touched once), registering
   the actual memory release as a deferred action stamped with the unlink
   timestamp, and
4. reports the modifications it saw to the access observer — the free ride
   that Section 4.2 uses for cold-block detection without touching the
   transaction critical path.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Protocol

from repro.gc_engine.epoch import DeferredActionQueue
from repro.obs import trace
from repro.obs.recorder import Recorder, get_recorder
from repro.obs.registry import STATE, MetricRegistry
from repro.storage.varlen import read_entry
from repro.txn.manager import TransactionManager
from repro.txn.undo import UndoRecord, UpdateUndoRecord

if TYPE_CHECKING:
    from repro.storage.block import RawBlock


class AccessObserver(Protocol):
    """Receiver for block-modification observations (Section 4.2)."""

    def observe_modification(self, block: "RawBlock", epoch: int) -> None:
        """Record that ``block`` was modified around GC epoch ``epoch``."""

    def on_gc_pass(self, epoch: int) -> None:
        """Hook run at the end of every GC pass."""


class GcStats:
    """Counters exposed for tests and benchmarks."""

    __slots__ = ("passes", "transactions_processed", "records_unlinked", "deferred_executed")

    def __init__(self) -> None:
        self.passes = 0
        self.transactions_processed = 0
        self.records_unlinked = 0
        self.deferred_executed = 0


class GarbageCollector:
    """Prunes version chains and frees memory behind the visibility horizon."""

    def __init__(
        self,
        txn_manager: TransactionManager,
        access_observer: AccessObserver | None = None,
        registry: MetricRegistry | None = None,
        recorder: Recorder | None = None,
    ) -> None:
        self.txn_manager = txn_manager
        self.recorder = recorder if recorder is not None else get_recorder()
        self.deferred = DeferredActionQueue()
        self.access_observer = access_observer
        self.stats = GcStats()
        #: Monotone count of GC invocations: the "GC epoch" that stands in
        #: for wall-clock time in cold-block detection.
        self.epoch = 0
        self.registry = registry if registry is not None else MetricRegistry()
        reg = self.registry
        self._m_pass_total = reg.counter("gc.pass_total", "GC passes run")
        self._m_unlinked_total = reg.counter(
            "gc.records_unlinked_total", "version records pruned from chains"
        )
        self._m_txns_total = reg.counter(
            "gc.transactions_processed_total", "completed transactions collected"
        )
        self._m_deferred_total = reg.counter(
            "gc.deferred_executed_total", "deferred deallocations executed"
        )
        self._m_deferred_errors = reg.counter(
            "gc.deferred_errors_total", "deferred deallocations that raised"
        )
        self._m_pass_seconds = reg.histogram("gc.pass_seconds", "GC pass duration")
        reg.gauge(
            "gc.deferred_pending",
            "deferred deallocations awaiting a safe epoch",
            callback=lambda: len(self.deferred),
        )
        reg.gauge("gc.epoch", "GC epoch (pass counter)", callback=lambda: self.epoch)

    def _record_pass(
        self, began: float, unlinked: int, txns: int, deferred: int
    ) -> None:
        """Registry-side accounting for one finished pass (any subclass)."""
        if not began:
            return
        self._m_pass_total.inc()
        self._m_unlinked_total.inc(unlinked)
        self._m_txns_total.inc(txns)
        self._m_deferred_total.inc(deferred)
        self._m_pass_seconds.observe(perf_counter() - began)

    def run(self) -> int:
        """One GC pass; returns the number of records unlinked."""
        began = perf_counter() if STATE.enabled else 0.0
        with trace.span("gc.pass"):
            self.epoch += 1
            horizon = self.txn_manager.oldest_active_start()
            deferred_run = self.deferred.process(horizon, on_error=self._on_deferred_error)
            self.stats.deferred_executed += deferred_run
            completed = self.txn_manager.drain_completed(horizon)
            unlinked = 0
            touched_blocks: dict[int, "RawBlock"] = {}
            from repro.errors import StorageError

            for txn in completed:
                unlink_ts = self.txn_manager.timestamps.checkpoint()
                for record in txn.undo_buffer:
                    try:
                        block = record.table._block(record.slot.block_id)
                    except StorageError:
                        # The block was recycled by compaction after emptying;
                        # its chains (and heaps) died with it.
                        continue
                    touched_blocks[block.block_id] = block
                    self._unlink(block, record)
                    unlinked += 1
                    action = self._deallocation_for(block, record)
                    if action is not None:
                        self.deferred.register(unlink_ts, action)
                self.stats.transactions_processed += 1
            if self.access_observer is not None:
                for block in touched_blocks.values():
                    block.last_modified_epoch = self.epoch
                    self.access_observer.observe_modification(block, self.epoch)
                self.access_observer.on_gc_pass(self.epoch)
            self.stats.passes += 1
            self.stats.records_unlinked += unlinked
        self._record_pass(began, unlinked, len(completed), deferred_run)
        if began and (unlinked or completed or deferred_run):
            # Idle passes (the background thread's common case) would only
            # flood the journal; record passes that did real work.
            self.recorder.record(
                "gc.pass",
                epoch=self.epoch,
                unlinked=unlinked,
                txns=len(completed),
                deferred=deferred_run,
                duration_seconds=perf_counter() - began,
            )
        return unlinked

    def _on_deferred_error(self, exc: BaseException) -> None:
        self._m_deferred_errors.inc()

    def run_until_quiet(self, max_passes: int = 16) -> None:
        """Run passes until nothing remains to unlink or defer (tests)."""
        for _ in range(max_passes):
            self.run()
            if (
                self.txn_manager.pending_gc_count == 0
                and len(self.deferred) == 0
            ):
                return

    def _unlink(self, block: "RawBlock", record: UndoRecord) -> None:
        """Remove one record from its chain under the block's write latch.

        Lingering traversals that already hold a reference simply continue
        on the detached suffix — Python's reference counting provides the
        use-after-free protection the paper's deallocation epoch guards.
        """
        offset = record.slot.offset
        with block.write_latch:
            head = block.version_ptrs[offset]
            if head is record:
                block.version_ptrs[offset] = record.next
                return
            node = head
            while node is not None and node.next is not record:
                node = node.next
            if node is not None:
                node.next = record.next

    def _deallocation_for(self, block: "RawBlock", record: UndoRecord):
        """Build the deferred free for a record, if it owns any memory.

        Only committed updates release varlen bytes here: their before-image
        entries became unreachable when the update overwrote the block.
        Aborted updates already freed the loser's new value during rollback,
        and deletes keep tuple contents in place until compaction recycles
        the slot.
        """
        if not isinstance(record, UpdateUndoRecord) or record.aborted:
            return None
        to_free: list[tuple[int, int]] = []
        for column_id, raw in record.before_raw.items():
            import numpy as np

            entry = read_entry(np.frombuffer(raw, dtype=np.uint8))
            if entry.owns_buffer:
                to_free.append((column_id, entry.pointer))
        if not to_free:
            return None

        def _free() -> None:
            for column_id, heap_id in to_free:
                block.varlen_heaps[column_id].free(heap_id)

        return _free
