"""Epoch-protected deferred actions (Sections 3.3 and 4.4).

An action registered with timestamp *t* runs only once the oldest active
transaction in the system started after *t* — at that point no running
transaction can observe state from before the action, so destructive work
(freeing unlinked version records, reclaiming pre-transformation varlen
buffers) is safe.  This mirrors the epoch-protection framework of FASTER
that the paper cites.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Callable


class DeferredActionQueue:
    """A timestamp-ordered queue of deferred callbacks."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._heap: list[tuple[int, int, Callable[[], None]]] = []
        self._tiebreak = itertools.count()
        self.executed_count = 0
        self.failed_count = 0

    def register(self, timestamp: int, action: Callable[[], None]) -> None:
        """Schedule ``action`` to run once the horizon passes ``timestamp``."""
        with self._lock:
            heapq.heappush(self._heap, (timestamp, next(self._tiebreak), action))

    def process(
        self,
        horizon: int,
        on_error: Callable[[BaseException], None] | None = None,
    ) -> int:
        """Run every action whose timestamp is strictly below ``horizon``.

        ``horizon`` is the oldest active start timestamp; actions tagged
        before it can no longer be observed.  Returns the number executed.

        Actions are isolated from each other: one raising must not abandon
        the rest of the ready set (they were already popped — dropping them
        would leak their memory forever).  Failures are counted and passed
        to ``on_error``, never re-raised into the GC pass.
        """
        ready: list[Callable[[], None]] = []
        with self._lock:
            while self._heap and self._heap[0][0] < horizon:
                ready.append(heapq.heappop(self._heap)[2])
        for action in ready:
            try:
                action()
            except Exception as exc:
                self.failed_count += 1
                if on_error is not None:
                    on_error(exc)
        self.executed_count += len(ready)
        return len(ready)

    def __len__(self) -> int:
        return len(self._heap)
