"""The Database facade: all engine components wired together.

This is the top of the public API — the piece a downstream user
instantiates.  It owns the catalog, timestamp domain, transaction manager,
log manager, garbage collector, access observer, and block transformer, in
the architecture of Figure 4 plus the transformation pipeline of Figure 8.

Example::

    from repro import Database, ColumnSpec, INT64, UTF8

    db = Database()
    items = db.create_table("item", [
        ColumnSpec("i_id", INT64), ColumnSpec("i_name", UTF8),
    ])
    with db.transaction() as txn:
        items.table.insert(txn, {0: 1, 1: "widget"})
"""

from __future__ import annotations

import contextlib
import io
from typing import BinaryIO, Iterator, Literal

from repro.catalog.catalog import Catalog, TableInfo
from repro.gc_engine.collector import GarbageCollector
from repro.obs.recorder import Recorder
from repro.obs.registry import MetricRegistry
from repro.obs.slo import RequestLog, SloTracker
from repro.storage.block_store import BlockStore
from repro.storage.constants import BLOCK_SIZE
from repro.storage.layout import ColumnSpec
from repro.transform.access_observer import AccessObserver
from repro.transform.transformer import BlockTransformer
from repro.txn.context import TransactionContext
from repro.txn.manager import TransactionManager
from repro.wal.manager import LogManager
from repro.wal.recovery import RecoveryManager


class Database:
    """An in-memory, Arrow-native, multi-versioned OLTP database."""

    def __init__(
        self,
        log_device: BinaryIO | None = None,
        logging_enabled: bool = True,
        cold_threshold_epochs: int = 1,
        compaction_group_size: int = 50,
        cold_format: Literal["gather", "dictionary"] = "gather",
        optimal_compaction: bool = False,
        obs_registry: MetricRegistry | None = None,
        recorder: Recorder | None = None,
        slow_txn_threshold: float | None = None,
        parallel_workers: int = 0,
        parallel_start_method: str | None = None,
    ) -> None:
        """``parallel_workers > 0`` enables the multiprocess scan/export
        pool (:mod:`repro.parallel`): frozen blocks are placed into a
        shared-memory arena at freeze time and scans/exports that opt in
        (``parallel=True``) fan block fragments out to worker processes.
        ``parallel_start_method`` forces ``fork``/``spawn``/``forkserver``
        (default: ``REPRO_PARALLEL_START_METHOD`` or ``fork`` where
        available).  On platforms without ``multiprocessing.shared_memory``
        the setting is ignored and everything stays in-process."""
        #: The engine-wide metric registry (see :mod:`repro.obs`): every
        #: component publishes into it, ``metrics()`` and the Prometheus /
        #: JSON expositions read from it.  Per-instance by default so
        #: independent databases never mix counts.
        self.obs = obs_registry if obs_registry is not None else MetricRegistry()
        #: The flight recorder (see :mod:`repro.obs.recorder`): every
        #: component journals its interesting edges here; ``timeline()``,
        #: ``serve_obs()``'s ``/events``, and the Chrome-trace export read
        #: from it.  ``slow_txn_threshold`` (seconds) enables the
        #: slow-transaction log.
        self.recorder = (
            recorder
            if recorder is not None
            else Recorder(registry=self.obs, slow_txn_threshold=slow_txn_threshold)
        )
        #: Per-tenant SLO accounting + completed-request critical-path
        #: breakdowns (fed by the service front door; served at /slo and
        #: /request/<id> by the obs HTTP server).
        self.slo = SloTracker(registry=self.obs)
        self.request_log = RequestLog()
        self.block_store = BlockStore(registry=self.obs)
        self.catalog = Catalog(self.block_store)
        self.arena = None
        self._parallel_pool = None
        self._parallel_workers = 0
        if parallel_workers > 0:
            from repro.parallel import SharedMemoryArena, shm_available

            if shm_available():
                self.arena = SharedMemoryArena(registry=self.obs)
                self.block_store.arena = self.arena
                self._parallel_workers = int(parallel_workers)
                self._parallel_start_method = parallel_start_method
        self.log_manager = (
            LogManager(
                device=log_device or io.BytesIO(),
                registry=self.obs,
                recorder=self.recorder,
            )
            if logging_enabled
            else None
        )
        self.txn_manager = TransactionManager(
            log_manager=self.log_manager, registry=self.obs, recorder=self.recorder
        )
        self.access_observer = AccessObserver(
            threshold_epochs=cold_threshold_epochs,
            registry=self.obs,
            recorder=self.recorder,
        )
        self.gc = GarbageCollector(
            self.txn_manager,
            access_observer=self.access_observer,
            registry=self.obs,
            recorder=self.recorder,
        )
        self.transformer = BlockTransformer(
            self.txn_manager,
            self.gc,
            self.access_observer,
            compaction_group_size=compaction_group_size,
            cold_format=cold_format,
            optimal_compaction=optimal_compaction,
            registry=self.obs,
            recorder=self.recorder,
            arena=self.arena,
        )
        self._obs_server = None
        if self.log_manager is not None:
            self.log_manager.on_degrade = self._enter_degraded
        self._register_db_gauges()

    def _register_db_gauges(self) -> None:
        """Callback gauges for live engine state (evaluated on read)."""
        reg = self.obs
        reg.gauge("db.tables", "tables in the catalog", callback=lambda: len(self.catalog))
        reg.gauge(
            "db.blocks_live",
            "blocks currently allocated",
            callback=lambda: self.block_store.live_count,
        )
        reg.gauge(
            "db.blocks_freed",
            "blocks returned to the store",
            callback=lambda: self.block_store.freed_count,
        )
        reg.gauge(
            "db.live_tuples",
            "visible tuples across all tables",
            callback=self._live_tuple_count,
        )
        reg.gauge(
            "index.maintenance_ops",
            "cumulative index maintenance operations",
            callback=lambda: self.catalog.index_manager.total_maintenance_ops(),
        )
        reg.gauge(
            "db.degraded",
            "1 while the engine is in degraded read-only mode",
            callback=lambda: 1.0 if self.degraded else 0.0,
        )
        self._m_background_errors = reg.counter(
            "db.background_errors_total",
            "exceptions survived by the maintenance threads",
        )

    def _live_tuple_count(self) -> int:
        return sum(
            self.catalog.table(name).live_tuple_count()
            for name in self.catalog.table_names()
        )

    # ------------------------------------------------------------------ #
    # DDL                                                                 #
    # ------------------------------------------------------------------ #

    def create_table(
        self,
        name: str,
        columns: list[ColumnSpec],
        block_size: int = BLOCK_SIZE,
        watch_cold: bool = False,
    ) -> TableInfo:
        """Create a table; ``watch_cold=True`` opts it into the hot→cold
        pipeline (the paper only watches tables that generate cold data)."""
        info = self.catalog.create_table(name, columns, block_size=block_size)
        if watch_cold:
            self.access_observer.watch_table(info.table)
        return info

    def create_index(self, table_name: str, index_name: str, key_columns: list[str],
                     kind: Literal["bplus", "hash"] = "bplus"):
        """Create an index on an (empty or populated) table."""
        backfill = self.txn_manager.begin()
        try:
            return self.catalog.create_index(
                table_name, index_name, key_columns, kind, backfill_txn=backfill
            )
        finally:
            self.txn_manager.commit(backfill)

    # ------------------------------------------------------------------ #
    # transactions                                                        #
    # ------------------------------------------------------------------ #

    def begin(self) -> TransactionContext:
        """Start a transaction."""
        return self.txn_manager.begin()

    def commit(self, txn: TransactionContext) -> int:
        """Commit; returns the commit timestamp."""
        return self.txn_manager.commit(txn)

    def abort(self, txn: TransactionContext) -> None:
        """Roll back."""
        self.txn_manager.abort(txn)

    @contextlib.contextmanager
    def transaction(self) -> Iterator[TransactionContext]:
        """Context manager committing on success, aborting on exception."""
        txn = self.begin()
        try:
            yield txn
        except BaseException:
            if txn.is_active:
                self.abort(txn)
            raise
        else:
            if txn.is_active:
                self.commit(txn)

    def run_transaction(self, body, retries: int = 3):
        """Run ``body(txn)`` with automatic retry on write-write conflicts.

        ``body`` must be safe to re-execute (it is rerun from scratch on
        conflict, against a fresh snapshot).  Returns ``body``'s result.
        Raises :class:`~repro.errors.TransactionAborted` once retries are
        exhausted.  Immediate retries, no backoff — workloads wanting
        jittered backoff use :func:`repro.txn.retry.retry_transaction`
        directly.
        """
        from repro.txn.retry import retry_transaction

        return retry_transaction(self, body, retries=retries, base_backoff=0.0)

    # ------------------------------------------------------------------ #
    # background work                                                     #
    # ------------------------------------------------------------------ #

    def run_maintenance(self, passes: int = 1) -> int:
        """Run GC + transformation passes; returns blocks frozen.

        A no-op in degraded read-only mode: the transformation pipeline
        moves tuples, and degraded mode bars all writers.
        """
        if self.degraded:
            return 0
        frozen = 0
        for _ in range(passes):
            frozen += self.transformer.run_pass()
        return frozen

    def quiesce(self, max_passes: int = 16) -> None:
        """Drain GC and deferred work (tests and orderly shutdown)."""
        self.gc.run_until_quiet(max_passes)
        if self.log_manager is not None:
            self.log_manager.flush()

    def freeze_table(self, name: str, max_passes: int = 8) -> int:
        """Drive a table's blocks to FROZEN (bulk-load → export workflows)."""
        info = self.catalog.get(name)
        if info.table not in self.access_observer._tables:
            self.access_observer.watch_table(info.table)
        frozen = 0
        for _ in range(max_passes):
            frozen += self.run_maintenance()
            from repro.storage.constants import BlockState

            states = info.table.block_states()
            if states[BlockState.HOT] == 0 and states[BlockState.COOLING] == 0:
                break
        return frozen

    def start_background(
        self,
        gc_interval: float = 0.005,
        transform_interval: float = 0.01,
        log_interval: float = 0.005,
    ) -> None:
        """Start the dedicated maintenance threads of Section 6.1.

        The paper's deployment runs one logging thread, one GC thread, and
        one transformation thread alongside the workers; this starts the
        same trio as daemons.  Idempotent; stop with
        :meth:`stop_background`.
        """
        if getattr(self, "_background_stop", None) is not None:
            return
        import threading

        stop = self._background_stop = threading.Event()

        def survive(step) -> None:
            # A transient failure in one pass must not silently kill the
            # maintenance thread for the rest of the process's life.
            try:
                step()
            except Exception:
                self._m_background_errors.inc()

        def gc_loop() -> None:
            while not stop.wait(gc_interval):
                survive(self.gc.run)

        def transform_loop() -> None:
            while not stop.wait(transform_interval):
                if self.degraded:
                    continue
                survive(self.transformer.process_queue)
                survive(self.transformer.process_freeze_pending)

        self._background_threads = [
            threading.Thread(target=gc_loop, daemon=True, name="gc"),
            threading.Thread(target=transform_loop, daemon=True, name="transform"),
        ]
        for thread in self._background_threads:
            thread.start()
        if self.log_manager is not None:
            self.log_manager.start_background(log_interval)

    def stop_background(self) -> None:
        """Stop the maintenance threads and drain outstanding work.

        Idempotent; safe even if a thread already died.  A failing final
        log flush is swallowed here (the engine may legitimately be
        degraded) — use :meth:`close` to have it surfaced.
        """
        stop = getattr(self, "_background_stop", None)
        if stop is None:
            return
        stop.set()
        for thread in self._background_threads:
            thread.join()
        self._background_stop = None
        self._background_threads = []
        if self.log_manager is not None:
            self.log_manager.stop_background()
        try:
            self.quiesce()
        except Exception:
            self._m_background_errors.inc()

    @property
    def parallel_pool(self):
        """The scan/export worker pool, or ``None`` when parallelism is off.

        Created lazily on first access (workers are spawned lazily on first
        dispatch after that), so a database configured with
        ``parallel_workers`` but never scanned in parallel pays nothing.
        """
        if self._parallel_workers <= 0:
            return None
        if self._parallel_pool is None:
            from repro.parallel import WorkerPool

            self._parallel_pool = WorkerPool(
                self._parallel_workers,
                start_method=self._parallel_start_method,
                registry=self.obs,
                recorder=self.recorder,
            )
        return self._parallel_pool

    def close(self) -> None:
        """Orderly shutdown: stop background work and drain the log.

        Unlike :meth:`stop_background`, a final failed flush is *raised* —
        a caller closing the database must learn that the tail of the log
        never became durable (the background thread's own last-drain error
        is surfaced the same way).  Also stops the parallel worker pool and
        unlinks every shared-memory segment the arena still owns.
        """
        self.stop_serving_obs()
        self.stop_background()
        if self._parallel_pool is not None:
            self._parallel_pool.stop()
            self._parallel_pool = None
        if self.arena is not None:
            self.arena.close()
        if self.log_manager is not None:
            self.log_manager.flush()
            error = self.log_manager.last_flush_error
            if error is not None:
                self.log_manager.last_flush_error = None
                raise error

    # ------------------------------------------------------------------ #
    # failure handling                                                    #
    # ------------------------------------------------------------------ #

    @property
    def degraded(self) -> bool:
        """Whether the engine is in degraded read-only mode."""
        return self.txn_manager.degraded

    def _enter_degraded(self, reason: str) -> None:
        """Hooked to the log manager: persistent device failure bars writers."""
        self.txn_manager.enter_degraded(reason)

    def health(self) -> dict:
        """Liveness/durability status for operators and the torture harness.

        ``status`` is ``"ok"`` or ``"degraded"``; the ``wal`` section is
        ``None`` when logging is disabled.  ``backlog`` is the flush-queue
        depth (transactions committed but not yet durable) and
        ``last_fsync_age_seconds`` the time since the last successful
        fsync (``None`` until the first one) — the two numbers that say
        how far behind the log is, also scrapeable as the ``wal.pending``
        and ``wal.last_fsync_age_seconds`` gauges.

        The ``workers`` section (``None`` unless a parallel pool has been
        started) reports pool liveness: workers configured/alive, how many
        crashed and were respawned, and the age of the oldest task still
        outstanding — the number that catches a wedged worker before its
        queue does.
        """
        wal = None
        if self.log_manager is not None:
            lm = self.log_manager
            wal = {
                "healthy": not lm.degraded,
                "flush_failures": lm.flush_failures,
                "consecutive_flush_failures": lm.consecutive_flush_failures,
                "pending": lm.pending_count,
                "backlog": lm.pending_count,
                "last_fsync_age_seconds": lm.last_fsync_age_seconds,
                "degraded_reason": lm.degraded_reason,
            }
        # Deliberately self._parallel_pool, not the lazy property: a
        # health probe must not spawn worker processes as a side effect.
        workers = (
            self._parallel_pool.liveness()
            if self._parallel_pool is not None
            else None
        )
        return {
            "status": "degraded" if self.degraded else "ok",
            "degraded_reason": self.txn_manager.degraded_reason,
            "wal": wal,
            "workers": workers,
            "slo": self.slo.health_summary(),
        }

    # ------------------------------------------------------------------ #
    # durability                                                          #
    # ------------------------------------------------------------------ #

    def log_contents(self) -> bytes:
        """The serialized write-ahead log (in-memory devices only)."""
        if self.log_manager is None:
            return b""
        return self.log_manager.contents()

    def recover_from(self, raw: bytes, tolerate_torn_tail: bool = True) -> int:
        """Replay a log into this (fresh) database; returns txns replayed.

        By default a torn final transaction (crash mid-flush) is dropped —
        it never committed durably.
        """
        recovery = RecoveryManager(self.txn_manager, self.catalog.data_tables())
        return recovery.replay(raw, tolerate_torn_tail=tolerate_torn_tail)

    def checkpoint(self, new_log_device: BinaryIO | None = None) -> bytes:
        """Write a quiescent checkpoint and truncate the log.

        The caller must ensure no concurrent writers (Section 3.4's
        checkpoints; fuzzy checkpointing is out of scope).  After this call
        the log contains only post-checkpoint transactions, so recovery is
        ``recover_with_checkpoint(checkpoint, log_contents())``.
        ``new_log_device`` replaces the log device after truncation (the
        fault-injection harness passes a fresh :class:`FaultyDevice` so the
        post-checkpoint log stays under fault control); a plain in-memory
        buffer by default.
        """
        from repro.wal.checkpoint import write_checkpoint

        if self.log_manager is not None:
            self.log_manager.flush()
        snapshot = write_checkpoint(self)
        if self.log_manager is not None:
            self.log_manager.truncate(new_log_device or io.BytesIO())
        return snapshot

    def recover_with_checkpoint(self, checkpoint: bytes, log_suffix: bytes) -> int:
        """Load a checkpoint then replay the log suffix into this (fresh)
        database; returns transactions replayed from the log."""
        from repro.wal.checkpoint import recover

        return recover(self, checkpoint, log_suffix)

    # ------------------------------------------------------------------ #
    # observability                                                       #
    # ------------------------------------------------------------------ #

    def verify_integrity(self):
        """Physical integrity pass over every table (see
        :mod:`repro.storage.integrity`); returns the report."""
        from repro.storage.integrity import check_database

        return check_database(self)

    def timeline(self, txn_id: int) -> dict:
        """The causal timeline of one transaction from the flight recorder:
        the begin→(retries)→commit/abort event chain plus the trace spans
        that ran inside it.  See :meth:`repro.obs.Recorder.timeline`."""
        return self.recorder.timeline(txn_id)

    def serve_obs(self, port: int = 0, host: str = "127.0.0.1"):
        """Start the HTTP monitoring server (``/metrics``, ``/healthz``,
        ``/varz``, ``/events``, ``/timeline/<txn_id>``, ``/trace``).

        ``port=0`` binds an ephemeral port — read the bound one from the
        returned :class:`~repro.obs.server.ObsServer`'s ``.port``.
        Idempotent; :meth:`close` stops it.
        """
        if self._obs_server is None:
            from repro.obs.server import ObsServer

            self._obs_server = ObsServer(self, host=host, port=port).start()
        return self._obs_server

    def stop_serving_obs(self) -> None:
        """Stop the monitoring server if one is running (idempotent)."""
        server, self._obs_server = self._obs_server, None
        if server is not None:
            server.stop()

    def metrics(self) -> dict:
        """One snapshot of every component's counters.

        Stable keys intended for dashboards and tests; values are plain
        ints/floats.  Since the ``repro.obs`` subsystem landed this is a
        thin view over the engine's metric registry (``self.obs``) — the
        machine-readable expositions (``obs.render_prometheus(db.obs)``,
        ``obs.render_json(db.obs)``) see the very same instruments.  Note
        that ``obs.configure(enabled=False)`` freezes the counter-backed
        values here along with every other instrument.
        """
        from repro.storage.constants import BlockState

        states = {state.name: 0 for state in BlockState}
        for name in self.catalog.table_names():
            for state, count in self.catalog.table(name).block_states().items():
                states[state.name] += count
        reg = self.obs
        counter = lambda name: int(reg.counter(name).value)
        gauge = lambda name: reg.gauge(name).value
        return {
            "tables": int(gauge("db.tables")),
            "blocks_live": int(gauge("db.blocks_live")),
            "blocks_freed": int(gauge("db.blocks_freed")),
            "block_states": states,
            "live_tuples": int(gauge("db.live_tuples")),
            "txns_active": int(gauge("txn.active")),
            "txns_pending_gc": int(gauge("txn.pending_gc")),
            "gc_passes": counter("gc.pass_total"),
            "gc_records_unlinked": counter("gc.records_unlinked_total"),
            "gc_deferred_pending": int(gauge("gc.deferred_pending")),
            "transform_groups_compacted": counter("transform.groups_compacted_total"),
            "transform_tuples_moved": counter("transform.tuples_moved_total"),
            "transform_blocks_frozen": counter("transform.blocks_frozen_total"),
            "transform_freezes_preempted": counter("transform.freezes_preempted_total"),
            "transform_queue_depth": int(gauge("transform.queue_depth")),
            "index_maintenance_ops": int(gauge("index.maintenance_ops")),
            "wal_bytes_written": counter("wal.written_bytes"),
            "wal_flushes": counter("wal.flush_total"),
        }
