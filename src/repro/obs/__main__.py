"""``python -m repro.obs`` — live monitoring from the command line.

Two subcommands:

``serve``
    Boot a demo database with a continuous light workload and serve the
    monitoring endpoints until interrupted::

        python -m repro.obs serve --port 8642
        curl localhost:8642/metrics

``smoke``
    The CI smoke path: run a TPC-C workload with the maintenance threads
    live, scrape ``/metrics`` / ``/healthz`` / ``/varz`` / ``/events``
    over real HTTP, validate every payload parses (Prometheus line format
    and JSON), reconstruct a committed transaction's timeline, and write
    a Chrome-trace artifact.  A second phase boots a two-shard cluster
    with two parallel workers per shard, scrapes ``/metrics`` and
    ``/pprof`` while a parallel scan and cross-shard commits are in
    flight, and writes the merged cross-process Chrome trace
    (``--cluster-trace-out``).  Exits non-zero on any failed check.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import urllib.request


def _fetch(url: str, timeout: float = 10.0) -> tuple[int, str]:
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as exc:  # 4xx/5xx still carry a body
        return exc.code, exc.read().decode("utf-8")


def _serve(args: argparse.Namespace) -> int:
    import random

    from repro import ColumnSpec, Database, FLOAT64, INT64, UTF8

    db = Database(cold_threshold_epochs=1, slow_txn_threshold=args.slow_threshold)
    info = db.create_table(
        "demo",
        [ColumnSpec("id", INT64), ColumnSpec("name", UTF8), ColumnSpec("value", FLOAT64)],
        watch_cold=True,
    )
    db.start_background()
    server = db.serve_obs(port=args.port, host=args.host)
    print(f"monitoring at {server.url}  (endpoints: {server.url}/)")
    print("running a continuous demo workload; Ctrl-C to stop")

    stop = threading.Event()
    rng = random.Random(0)

    def workload() -> None:
        next_id = 0
        while not stop.is_set():
            try:
                with db.transaction() as txn:
                    for _ in range(10):
                        info.table.insert(
                            txn,
                            {0: next_id, 1: f"row-{next_id}", 2: rng.uniform(0, 100)},
                        )
                        next_id += 1
            except Exception:
                pass
            time.sleep(args.write_interval)

    worker = threading.Thread(target=workload, daemon=True, name="demo-writer")
    worker.start()
    try:
        while True:
            time.sleep(0.5)
    except KeyboardInterrupt:
        pass
    finally:
        stop.set()
        worker.join()
        db.close()
    return 0


def _check(ok: bool, label: str, failures: list[str]) -> None:
    print(f"  [{'ok' if ok else 'FAIL'}] {label}")
    if not ok:
        failures.append(label)


def _smoke(args: argparse.Namespace) -> int:
    from repro import Database, obs
    from repro.workloads.tpcc import TpccConfig, TpccDriver

    failures: list[str] = []
    db = Database(cold_threshold_epochs=1, slow_txn_threshold=0.0)
    driver = TpccDriver(db, TpccConfig.small())
    print("loading TPC-C ...")
    driver.setup()
    db.start_background()
    server = db.serve_obs(port=args.port)
    print(f"serving at {server.url}; running {args.txns} transactions ...")

    run_box: dict = {}

    def workload() -> None:
        run_box["run"] = driver.run(transactions_per_worker=args.txns)

    worker = threading.Thread(target=workload, name="tpcc-worker")
    worker.start()
    time.sleep(0.2)  # let some transactions land before the live scrape

    # --- live scrapes while the workload is running -------------------- #
    status, prom = _fetch(f"{server.url}/metrics")
    sample_lines = [
        line for line in prom.splitlines() if line and not line.startswith("#")
    ]
    _check(
        status == 200 and all(len(line.split()) >= 2 for line in sample_lines),
        f"/metrics parses ({len(sample_lines)} samples)",
        failures,
    )
    _check("txn_commit_total" in prom, "/metrics includes txn_commit_total", failures)

    status, raw = _fetch(f"{server.url}/healthz")
    health = json.loads(raw)
    _check(
        status == 200 and health["status"] == "ok" and health["wal"]["healthy"],
        "/healthz ok while workload runs",
        failures,
    )
    _check(
        "backlog" in health["wal"] and "last_fsync_age_seconds" in health["wal"],
        "/healthz reports WAL backlog + fsync age",
        failures,
    )

    status, raw = _fetch(f"{server.url}/varz")
    varz = json.loads(raw)
    _check(
        status == 200 and {"counters", "gauges", "histograms"} <= set(varz),
        "/varz JSON snapshot",
        failures,
    )

    status, raw = _fetch(f"{server.url}/events?component=txn&limit=50")
    events = json.loads(raw)["events"]
    _check(status == 200 and len(events) > 0, "/events returns journal entries", failures)

    worker.join()
    run = run_box.get("run")
    _check(run is not None and run.committed > 0, "workload committed transactions", failures)

    # --- post-run forensic checks -------------------------------------- #
    commits = db.recorder.events(kind="txn.commit", limit=5)
    _check(len(commits) > 0, "journal captured commits", failures)
    if commits:
        txn_id = commits[-1].txn_id
        status, raw = _fetch(f"{server.url}/timeline/{txn_id}")
        timeline = json.loads(raw)
        _check(
            status == 200
            and timeline["complete"]
            and timeline["status"] == "committed",
            f"/timeline/{txn_id} reconstructs a complete chain",
            failures,
        )
    slow = db.recorder.slow_transactions()
    _check(len(slow) > 0, "slow-transaction log captured timelines", failures)

    db.stop_background()
    trace_json = obs.render_chrome_trace(db.recorder)
    parsed = json.loads(trace_json)
    _check(len(parsed["traceEvents"]) > 0, "chrome trace has events", failures)
    if args.trace_out:
        with open(args.trace_out, "w") as fh:
            fh.write(trace_json)
        print(f"chrome trace written to {args.trace_out}")

    server.stop()
    db.close()

    _smoke_cluster(args, failures)

    if failures:
        print(f"\nsmoke FAILED: {failures}")
        return 1
    print("\nsmoke ok")
    return 0


def _smoke_cluster(args: argparse.Namespace, failures: list[str]) -> None:
    """Phase two: cross-process telemetry on a sharded, parallel engine.

    Scrapes ``/metrics`` and ``/pprof`` while a two-worker parallel scan
    and cross-shard 2PC commits are both in flight, then validates the
    merged Chrome trace spans coordinator, shards, and worker processes.
    """
    from repro import obs
    from repro.cluster import ShardedDatabase
    from repro.obs.relay import HAVE_SHARED_MEMORY
    from repro.query.scan import TableScanner
    from repro.workloads.tpcc import TpccConfig, TpccDriver
    from repro.workloads.tpcc.schema import TPCC_SHARD_KEYS
    from repro.workloads.tpcc.transactions import TpccTransactions

    if not HAVE_SHARED_MEMORY:
        print("cluster phase skipped: no multiprocessing.shared_memory")
        return

    print("\ncluster phase: 2 shards x 2 workers ...")
    config = TpccConfig(
        warehouses=2,
        districts_per_warehouse=2,
        customers_per_district=12,
        items=80,
        initial_orders_per_district=8,
        stock_per_warehouse=60,
        payment_remote_rate=1.0,
        block_size=1 << 12,
    )
    cluster = ShardedDatabase(
        n_shards=2,
        shard_keys=TPCC_SHARD_KEYS,
        cold_threshold_epochs=1,
        parallel_workers=2,
        logging_enabled=False,
    )
    TpccDriver(cluster, config).setup()
    shard = cluster.shards[0]
    shard.freeze_table("stock")
    stock = shard.catalog.table("stock")
    shard_server = shard.serve_obs(port=0)

    stop = threading.Event()
    totals = {"payments": 0, "rows": 0}

    def churn() -> None:
        executor = TpccTransactions(cluster, config, seed=11)
        with obs.span("smoke.cluster"):
            while not stop.is_set():
                if executor.payment(1):
                    totals["payments"] += 1
                scanner = TableScanner(
                    shard.txn_manager, stock, pool=shard.parallel_pool
                )
                totals["rows"] += sum(b.num_rows for b in scanner.batches())

    worker = threading.Thread(target=churn, name="cluster-churn")
    worker.start()
    time.sleep(0.3)  # let commits and fragments land before scraping

    # --- scrapes while scans + 2PC commits are in flight --------------- #
    status, prom = _fetch(f"{shard_server.url}/metrics")
    worker_lines = [
        line
        for line in prom.splitlines()
        if 'process="worker"' in line and not line.startswith("#")
    ]
    nonzero = [
        line
        for line in worker_lines
        if line.startswith("parallel_fragment_blocks_total")
        and float(line.rsplit(" ", 1)[1]) > 0
    ]
    _check(
        status == 200 and bool(nonzero),
        f"shard /metrics has nonzero worker-labeled series ({len(worker_lines)} lines)",
        failures,
    )

    status, pprof = _fetch(f"{shard_server.url}/pprof?seconds=1&interval=5")
    folded = [line for line in pprof.splitlines() if line]
    _check(
        status == 200
        and all(line.rsplit(" ", 1)[1].isdigit() for line in folded),
        f"/pprof returns collapsed stacks ({len(folded)} frames)",
        failures,
    )

    stop.set()
    worker.join()
    _check(totals["payments"] > 0, "cross-shard payments committed", failures)
    _check(totals["rows"] > 0, "parallel scans returned rows", failures)

    health = cluster.health()
    workers = health.get("workers")
    _check(
        workers is not None and workers["alive"] >= 2,
        "cluster health reports live worker pools",
        failures,
    )

    trace_json = obs.render_chrome_trace(cluster.recorder)
    parsed = json.loads(trace_json)
    names = {e["name"] for e in parsed["traceEvents"] if e["ph"] == "X"}
    procs = {
        e["args"]["name"]
        for e in parsed["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    _check(
        "cluster.2pc" in names and "cluster.2pc.prepare" in names,
        "merged trace has coordinator + participant 2PC spans",
        failures,
    )
    _check(
        "parallel.scan_fragment" in names and bool(procs & {"worker0", "worker1"}),
        "merged trace has worker-process spans on worker tracks",
        failures,
    )
    if args.cluster_trace_out:
        with open(args.cluster_trace_out, "w") as fh:
            fh.write(trace_json)
        print(f"cluster chrome trace written to {args.cluster_trace_out}")

    _smoke_cluster_front_door(args, cluster, failures)

    shard.stop_serving_obs()
    cluster.close()


def _smoke_cluster_front_door(args, cluster, failures: list[str]) -> None:
    """Phase three: the service front door on the cluster — `/slo` must
    account for the traffic, and the tail sampler must keep (only) the
    interesting traces, one of which ships as the slow-request artifact."""
    from repro import ColumnSpec, obs
    from repro.arrowfmt.datatypes import INT64, UTF8
    from repro.obs.trace import get_tracer
    from repro.service.client import ServiceClient
    from repro.service.server import ServerThread, ServiceConfig

    print("front-door phase: /slo + tail-sampled slow-request trace ...")
    cluster.create_table(
        "usertable",
        [ColumnSpec("key", INT64), ColumnSpec("field0", UTF8)],
        shard_key="key",
    )
    cluster.create_index("usertable", "by_key", ["key"])
    info = cluster.catalog.get("usertable")
    with cluster.transaction() as txn:
        for key in range(50):
            info.table.insert(txn, {0: key, 1: f"v{key}"})

    service = ServerThread(
        cluster,
        ServiceConfig(exemplars=True, tail_sample_threshold_ms=1.0),
    ).start()
    decided = 0
    with ServiceClient(port=service.port) as client:
        for key in range(30):
            client.read("usertable", "by_key", (key % 50,))
            decided += 1
        client.scan("usertable", limit=50)  # the slow shape
        decided += 1
        errored = client.read("usertable", "nope", (1,))  # marked → kept
        decided += 1
    _check(errored.code == "bad_request", "errored request answered", failures)

    cluster_obs = cluster.serve_obs()
    status, raw = _fetch(f"{cluster_obs.url}/slo")
    slo = json.loads(raw)
    tenant = (slo.get("tenants") or {}).get("default")
    _check(
        status == 200 and tenant is not None
        and tenant["windows"]["60s"]["total"] >= decided,
        "/slo accounts for front-door traffic on the cluster",
        failures,
    )
    _check(
        tenant is not None and 0.0 <= tenant["error_budget_remaining"] <= 1.0,
        "cluster error budget stays a fraction",
        failures,
    )
    _check("slo" in cluster.health(), "db.health() carries the SLO summary", failures)

    sampler = service.server._sampler
    stats = sampler.stats()
    _check(
        stats["kept_traces"] >= 1,
        f"tail sampler kept the interesting traces ({stats['kept_traces']})",
        failures,
    )
    _check(
        stats["kept_traces"] + stats["dropped_traces"] == decided,
        f"tail sampler accounting is exact ({stats['kept_traces']} kept "
        f"+ {stats['dropped_traces']} dropped == {decided} decided)",
        failures,
    )

    # The artifact: the slowest request whose trace survived sampling,
    # rendered as a single-trace Chrome document with its waterfall track.
    kept_ids = {
        span.trace_id
        for span in get_tracer().spans()
        if span.name == "service.request" and span.trace_id is not None
    }
    slowest = max(
        (
            lifecycle
            for lifecycle in cluster.request_log.recent(limit=250)
            if lifecycle.trace_id in kept_ids
        ),
        key=lambda lifecycle: lifecycle.total_seconds,
        default=None,
    )
    _check(
        slowest is not None,
        "a kept trace resolves to a request breakdown",
        failures,
    )
    if slowest is not None:
        slow_doc = obs.render_chrome_trace(
            cluster.recorder,
            trace_id=slowest.trace_id,
            requests=[slowest],
        )
        parsed = json.loads(slow_doc)
        slices = [e for e in parsed["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in slices}
        _check(
            "service.request" in names and f"request:{slowest.op}" in names,
            "slow-request trace carries the root span + waterfall track",
            failures,
        )
        if args.slow_trace_out:
            with open(args.slow_trace_out, "w") as fh:
                fh.write(slow_doc)
            print(
                f"slow-request trace (request {slowest.request_id}, trace "
                f"{slowest.trace_hex}) written to {args.slow_trace_out}"
            )

    service.stop()
    cluster.stop_serving_obs()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs", description="live monitoring for the repro engine"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="serve monitoring endpoints over a demo DB")
    serve.add_argument("--port", type=int, default=8642)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--write-interval", type=float, default=0.05)
    serve.add_argument(
        "--slow-threshold",
        type=float,
        default=0.05,
        help="slow-transaction capture threshold in seconds",
    )

    smoke = sub.add_parser("smoke", help="CI smoke: workload + HTTP scrape validation")
    smoke.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    smoke.add_argument("--txns", type=int, default=300)
    smoke.add_argument("--trace-out", default=None, help="write Chrome trace JSON here")
    smoke.add_argument(
        "--cluster-trace-out",
        default=None,
        help="write the cluster phase's merged cross-process Chrome trace here",
    )
    smoke.add_argument(
        "--slow-trace-out",
        default=None,
        help="write one tail-sampled slow-request Chrome trace here",
    )

    args = parser.parse_args(argv)
    if args.command == "serve":
        return _serve(args)
    return _smoke(args)


if __name__ == "__main__":
    sys.exit(main())
