"""Request-scoped critical-path attribution and per-tenant SLO tracking.

Three pieces, same off-critical-path principle as the rest of ``repro.obs``:

:class:`RequestLifecycle`
    One service request's phase-stamped lifetime.  Each phase
    (``admission.queue_wait``, ``slot_wait``, ``engine``,
    ``retry.backoff``, ``wal.fsync_wait``, ``worker.fragment``,
    ``cluster.prepare``, ``cluster.decide``, ``response.write``) is a pair
    of ``perf_counter()`` stamps — no allocation beyond one small list per
    phase, no locks on the stamping path.  :meth:`RequestLifecycle.breakdown`
    folds the stamps into a critical-path view: phases nested inside the
    ``engine`` window (backoff sleeps, fsync waits, worker fragments, 2PC
    phases) are subtracted out of it, so the breakdown answers *where did
    this request's time actually go* instead of double-counting.

    The lifecycle binds to the executing thread via :meth:`activate`, and
    deep engine layers stamp through :func:`stamp_phase` without any
    plumbing: when no request is active the stamp is one thread-local
    ``getattr`` and a branch (the same disabled-cost discipline the metric
    registry holds itself to, measured by
    ``benchmarks/bench_ablation_slo_attribution.py``).

:class:`RequestLog`
    A bounded ring of completed lifecycles keyed by request id (and by
    trace id, which is how a histogram exemplar's ``trace_id`` resolves
    back to a breakdown).  Serves ``/request/<id>``.

:class:`SloTracker`
    Per-tenant service-level objectives (target latency + availability)
    tracked over rolling multi-window buckets: burn rate per window
    (observed bad fraction over the error budget) and remaining error
    budget.  Computed from the same completion stream that feeds the
    latency histograms; exposed at ``/slo``, in ``db.health()``, and as
    ``slo.*`` gauges in the Prometheus exposition.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, Iterable

if TYPE_CHECKING:
    from repro.obs.registry import MetricRegistry

#: Phases that run *inside* the ``engine`` window; their time is
#: subtracted from ``engine`` in the breakdown so the critical path sums
#: instead of double-counting.
INNER_PHASES = frozenset(
    {
        "retry.backoff",
        "wal.fsync_wait",
        "worker.fragment",
        "cluster.prepare",
        "cluster.decide",
    }
)

#: The thread-local "current request" cell.  The service binds a
#: lifecycle here (via :meth:`RequestLifecycle.activate`) for the duration
#: of the engine work; the flight recorder and :func:`stamp_phase` read
#: it.  Public so the recorder can do one raw ``getattr`` per event.
CURRENT = threading.local()


def current_lifecycle() -> "RequestLifecycle | None":
    """The request lifecycle bound to this thread, if any."""
    return getattr(CURRENT, "lifecycle", None)


def current_request_id() -> int | None:
    lifecycle = getattr(CURRENT, "lifecycle", None)
    return lifecycle.request_id if lifecycle is not None else None


class _Phase:
    """Context manager stamping one phase interval (class-based: cheap)."""

    __slots__ = ("_lifecycle", "_name", "_start")

    def __init__(self, lifecycle: "RequestLifecycle", name: str) -> None:
        self._lifecycle = lifecycle
        self._name = name

    def __enter__(self) -> "_Phase":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._lifecycle.phases.append(
            [self._name, self._start, perf_counter()]
        )


class _NullPhase:
    """Shared no-op scope for threads with no active request."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_PHASE = _NullPhase()


def stamp_phase(name: str) -> "_Phase | _NullPhase":
    """Stamp ``name`` onto the current request, if one is active.

    This is the hook deep engine layers call (retry backoff, durability
    waits, parallel fragment dispatch, 2PC phases): no handle threading,
    and when no request is active — every non-service workload — the cost
    is one thread-local ``getattr`` and a branch.
    """
    lifecycle = getattr(CURRENT, "lifecycle", None)
    if lifecycle is None:
        return _NULL_PHASE
    return _Phase(lifecycle, name)


class _Activation:
    """Scope during which a lifecycle is this thread's current request."""

    __slots__ = ("_lifecycle", "_prev")

    def __init__(self, lifecycle: "RequestLifecycle") -> None:
        self._lifecycle = lifecycle

    def __enter__(self) -> "_Activation":
        self._prev = getattr(CURRENT, "lifecycle", None)
        CURRENT.lifecycle = self._lifecycle
        return self

    def __exit__(self, *exc_info) -> None:
        CURRENT.lifecycle = self._prev


class RequestLifecycle:
    """One request's phase-stamped lifetime and outcome.

    Stamping happens from at most one thread at a time (the event loop
    before/after execution, one executor thread during), so the phase
    list needs no lock.
    """

    __slots__ = (
        "request_id", "op", "tenant", "trace_id", "started", "ended",
        "outcome", "terminal_phase", "phases",
    )

    def __init__(
        self, request_id: int, op: str = "unknown", tenant: str = "default"
    ) -> None:
        self.request_id = request_id
        self.op = op
        self.tenant = tenant
        #: Trace id of the request's root span, set once engine work opens
        #: it; ``None`` for requests shed before execution.
        self.trace_id: int | None = None
        self.started = perf_counter()
        self.ended: float | None = None
        self.outcome: str | None = None
        #: The phase a shed request died in (``"admission"`` for every
        #: pre-execution rejection); ``None`` for completed requests.
        self.terminal_phase: str | None = None
        #: ``[name, start, end]`` stamps on the ``perf_counter`` axis.
        self.phases: list[list] = []

    # -- stamping ------------------------------------------------------- #

    def phase(self, name: str) -> _Phase:
        """A context manager stamping one ``name`` interval."""
        return _Phase(self, name)

    def stamp(self, name: str, start: float, end: float) -> None:
        """Record an externally timed interval (e.g. the admission queue
        wait, measured on the event loop before the lifecycle migrates to
        an executor thread)."""
        self.phases.append([name, start, end])

    def activate(self) -> _Activation:
        """Bind this lifecycle to the current thread for the scope."""
        return _Activation(self)

    def finish(
        self, outcome: str, terminal_phase: str | None = None
    ) -> None:
        self.outcome = outcome
        if terminal_phase is not None:
            self.terminal_phase = terminal_phase

    def close(self) -> None:
        """Seal the total-latency clock (idempotent)."""
        if self.ended is None:
            self.ended = perf_counter()

    # -- derived views -------------------------------------------------- #

    @property
    def total_seconds(self) -> float:
        return (self.ended if self.ended is not None else perf_counter()) - self.started

    @property
    def trace_hex(self) -> str | None:
        """The trace id as the hex string exemplars and envelopes carry."""
        return format(self.trace_id, "x") if self.trace_id is not None else None

    def breakdown(self) -> dict[str, float]:
        """Seconds per phase, critical-path style.

        Inner phases (:data:`INNER_PHASES` — stamps taken *during* the
        engine window) are subtracted from ``engine`` by interval overlap,
        so the values sum toward the total instead of double-counting;
        whatever none of the stamps cover is ``unattributed``.
        """
        sums: dict[str, float] = {}
        engine_windows = [
            (start, end) for name, start, end in self.phases if name == "engine"
        ]
        for name, start, end in self.phases:
            sums[name] = sums.get(name, 0.0) + (end - start)
        if "engine" in sums:
            # Inner phases close *before* their enclosing engine window
            # does, so subtract overlaps in a second pass once every
            # window is summed.
            for name, start, end in self.phases:
                if name == "engine":
                    continue
                overlap = sum(
                    max(0.0, min(end, w_end) - max(start, w_start))
                    for w_start, w_end in engine_windows
                )
                if overlap > 0.0:
                    sums["engine"] = max(0.0, sums["engine"] - overlap)
        total = self.total_seconds
        sums["unattributed"] = max(0.0, total - sum(sums.values()))
        return sums

    def dominant_phase(self) -> str | None:
        """The phase holding the most exclusive time (the critical-path
        headline).  A request that never executed (``terminal_phase`` set:
        shed, gated, draining) is attributed to the phase that refused it,
        however little time that took — the microseconds its rejection
        spent writing out must not become the headline."""
        if self.terminal_phase is not None:
            return self.terminal_phase
        parts = {
            name: seconds
            for name, seconds in self.breakdown().items()
            if name != "unattributed"
        }
        if not parts:
            return None
        return max(parts, key=parts.get)

    def to_dict(self) -> dict[str, Any]:
        """The ``/request/<id>`` JSON view: waterfall + breakdown."""
        breakdown = self.breakdown()
        waterfall = [
            {
                "phase": name,
                "start_ms": round((start - self.started) * 1e3, 4),
                "duration_ms": round((end - start) * 1e3, 4),
            }
            for name, start, end in self.phases
        ]
        return {
            "request_id": self.request_id,
            "op": self.op,
            "tenant": self.tenant,
            "trace_id": self.trace_hex,
            "outcome": self.outcome,
            "terminal_phase": self.terminal_phase,
            "total_ms": round(self.total_seconds * 1e3, 4),
            "started": self.started,
            "waterfall": waterfall,
            "breakdown_ms": {
                name: round(seconds * 1e3, 4)
                for name, seconds in sorted(breakdown.items())
            },
            "dominant_phase": self.dominant_phase(),
        }


class RequestLog:
    """A bounded ring of completed lifecycles, addressable by request id
    and by trace id (how an exemplar resolves to a breakdown)."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("request log capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._order: deque[int] = deque()
        self._by_id: dict[int, RequestLifecycle] = {}
        self._by_trace: dict[int, int] = {}

    def add(self, lifecycle: RequestLifecycle) -> None:
        with self._lock:
            if lifecycle.request_id in self._by_id:
                return
            while len(self._order) >= self.capacity:
                evicted = self._order.popleft()
                old = self._by_id.pop(evicted, None)
                if old is not None and old.trace_id is not None:
                    if self._by_trace.get(old.trace_id) == evicted:
                        del self._by_trace[old.trace_id]
            self._order.append(lifecycle.request_id)
            self._by_id[lifecycle.request_id] = lifecycle
            if lifecycle.trace_id is not None:
                self._by_trace[lifecycle.trace_id] = lifecycle.request_id

    def get(self, request_id: int) -> RequestLifecycle | None:
        with self._lock:
            return self._by_id.get(request_id)

    def by_trace(self, trace_id: int | str) -> RequestLifecycle | None:
        """Lookup by trace id — accepts the raw int or the hex string an
        exemplar / response envelope carries."""
        if isinstance(trace_id, str):
            try:
                trace_id = int(trace_id, 16)
            except ValueError:
                return None
        with self._lock:
            request_id = self._by_trace.get(trace_id)
            return self._by_id.get(request_id) if request_id is not None else None

    def recent(self, limit: int = 50) -> list[RequestLifecycle]:
        """Newest-last recent completions."""
        with self._lock:
            ids = list(self._order)[-limit:]
            return [self._by_id[i] for i in ids]

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_id)


class _TenantSlo:
    """One tenant's objective and rolling buckets."""

    __slots__ = ("target_latency", "availability", "buckets")

    def __init__(self, target_latency: float, availability: float) -> None:
        self.target_latency = target_latency
        self.availability = availability
        #: ``[bucket_index, total, good]`` — appended in time order.
        self.buckets: deque[list] = deque()


class SloTracker:
    """Per-tenant SLO accounting: burn rate and error budget over rolling
    windows.

    A request is *good* when it completed ok **within the tenant's target
    latency**; sheds and errors are bad, and so are slow successes (a
    latency SLO that ignored tardy answers would never burn).  Burn rate
    over a window is the observed bad fraction divided by the budgeted
    bad fraction (``1 - availability``): 1.0 burns the budget exactly at
    the sustainable rate, >1 is an alert.
    """

    def __init__(
        self,
        registry: "MetricRegistry | None" = None,
        target_latency: float = 0.25,
        availability: float = 0.999,
        windows: Iterable[float] = (60.0, 300.0, 3600.0),
        bucket_seconds: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not 0.0 < availability < 1.0:
            raise ValueError("availability target must be in (0, 1)")
        self.default_target_latency = float(target_latency)
        self.default_availability = float(availability)
        self.windows = tuple(sorted(float(w) for w in windows))
        if not self.windows or self.windows[0] <= 0:
            raise ValueError("windows must be positive")
        self.bucket_seconds = float(bucket_seconds)
        self.clock = clock
        self._lock = threading.Lock()
        self._tenants: dict[str, _TenantSlo] = {}
        self._registry = registry
        self._gauged: set[str] = set()

    def configure_defaults(
        self,
        target_latency: float | None = None,
        availability: float | None = None,
    ) -> None:
        """Adjust the defaults new tenants inherit (the service front door
        pushes its ``ServiceConfig`` targets here)."""
        if target_latency is not None:
            self.default_target_latency = float(target_latency)
        if availability is not None:
            self.default_availability = float(availability)

    def set_objective(
        self,
        tenant: str,
        target_latency: float | None = None,
        availability: float | None = None,
    ) -> None:
        """Override one tenant's objective (existing samples are kept and
        re-judged only going forward — goodness is decided at record time)."""
        with self._lock:
            state = self._tenant(tenant)
            if target_latency is not None:
                state.target_latency = float(target_latency)
            if availability is not None:
                if not 0.0 < availability < 1.0:
                    raise ValueError("availability target must be in (0, 1)")
                state.availability = float(availability)

    def _tenant(self, tenant: str) -> _TenantSlo:
        state = self._tenants.get(tenant)
        if state is None:
            state = self._tenants[tenant] = _TenantSlo(
                self.default_target_latency, self.default_availability
            )
            self._register_gauges(tenant)
        return state

    def _register_gauges(self, tenant: str) -> None:
        if self._registry is None or tenant in self._gauged:
            return
        self._gauged.add(tenant)
        for window in self.windows:
            label = f"{int(window)}s"
            self._registry.gauge(
                "slo.burn_rate",
                "error-budget burn rate per tenant and window "
                "(1.0 = burning exactly the budget)",
                callback=lambda t=tenant, w=window: self.burn_rate(t, w),
                labels={"tenant": tenant, "window": label},
            )
        self._registry.gauge(
            "slo.error_budget_remaining",
            "fraction of the error budget left over the longest window",
            callback=lambda t=tenant: self.error_budget_remaining(t),
            labels={"tenant": tenant},
        )

    # -- write path ----------------------------------------------------- #

    def record(
        self, tenant: str, latency: float, ok: bool, shed: bool = False
    ) -> None:
        """Fold one finished request in.

        ``shed`` requests are bad by definition (they are the availability
        failures admission control makes explicit) regardless of how fast
        the rejection was.
        """
        now = self.clock()
        index = int(now / self.bucket_seconds)
        with self._lock:
            state = self._tenant(tenant)
            good = ok and not shed and latency <= state.target_latency
            buckets = state.buckets
            if buckets and buckets[-1][0] == index:
                cell = buckets[-1]
                cell[1] += 1
                cell[2] += 1 if good else 0
            else:
                buckets.append([index, 1, 1 if good else 0])
            horizon = index - int(self.windows[-1] / self.bucket_seconds) - 1
            while buckets and buckets[0][0] < horizon:
                buckets.popleft()

    # -- read path ------------------------------------------------------ #

    def _window_counts(
        self, state: _TenantSlo, window: float, now: float
    ) -> tuple[int, int]:
        cutoff = int(now / self.bucket_seconds) - int(
            window / self.bucket_seconds
        )
        total = good = 0
        for index, bucket_total, bucket_good in reversed(state.buckets):
            if index < cutoff:
                break
            total += bucket_total
            good += bucket_good
        return total, good

    def burn_rate(self, tenant: str, window: float) -> float:
        """Observed bad fraction over the budgeted bad fraction; 0.0 with
        no traffic (no traffic burns no budget)."""
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                return 0.0
            total, good = self._window_counts(state, window, self.clock())
            if total == 0:
                return 0.0
            bad_fraction = (total - good) / total
            return bad_fraction / (1.0 - state.availability)

    def error_budget_remaining(self, tenant: str) -> float:
        """Fraction of the longest window's error budget unspent (1.0 with
        no traffic; clamped at 0)."""
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                return 1.0
            total, good = self._window_counts(
                state, self.windows[-1], self.clock()
            )
            if total == 0:
                return 1.0
            budget = total * (1.0 - state.availability)
            return max(0.0, 1.0 - (total - good) / budget) if budget > 0 else 0.0

    def report(self) -> dict[str, Any]:
        """The ``/slo`` JSON document."""
        now = self.clock()
        with self._lock:
            tenants = {}
            for tenant, state in sorted(self._tenants.items()):
                windows = {}
                for window in self.windows:
                    total, good = self._window_counts(state, window, now)
                    bad = total - good
                    bad_fraction = bad / total if total else 0.0
                    windows[f"{int(window)}s"] = {
                        "total": total,
                        "good": good,
                        "bad": bad,
                        "bad_fraction": round(bad_fraction, 6),
                        "burn_rate": round(
                            bad_fraction / (1.0 - state.availability), 4
                        ),
                    }
                tenants[tenant] = {
                    "objective": {
                        "target_latency_ms": state.target_latency * 1e3,
                        "availability": state.availability,
                    },
                    "windows": windows,
                }
        out = {"tenants": tenants}
        for tenant in tenants:
            tenants[tenant]["error_budget_remaining"] = round(
                self.error_budget_remaining(tenant), 6
            )
        return out

    def health_summary(self) -> dict[str, Any]:
        """The compact section ``db.health()`` embeds: worst burn over the
        shortest window and which tenants are currently breaching."""
        shortest = self.windows[0]
        with self._lock:
            names = list(self._tenants)
        worst = 0.0
        breaching = []
        for tenant in names:
            burn = self.burn_rate(tenant, shortest)
            worst = max(worst, burn)
            if burn > 1.0:
                breaching.append(tenant)
        return {
            "tenants": len(names),
            "window_seconds": shortest,
            "worst_burn_rate": round(worst, 4),
            "breaching": sorted(breaching),
        }
