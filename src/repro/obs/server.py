"""The stdlib-only HTTP monitoring server: live scrape of one Database.

``db.serve_obs(port)`` starts a daemon :class:`ObsServer` exposing:

- ``/metrics``  — Prometheus text exposition of ``db.obs``,
- ``/healthz``  — ``db.health()`` as JSON; 503 while degraded,
- ``/varz``     — the stable JSON metric snapshot,
- ``/events``   — recent journal events; filter with
  ``?component=wal&kind=wal.flush&txn=123&block=7&limit=100``,
- ``/timeline/<txn_id>`` — the causal timeline of one transaction,
- ``/trace``    — the Chrome-trace document (drop into chrome://tracing),
- ``/pprof``    — collapsed-stack wall-clock profile (``?seconds=N``),
- ``/``         — an endpoint index.

Scrapes run on short-lived handler threads (``ThreadingHTTPServer``) and
only ever *read*: a merge of metric shards, a snapshot of the journal ring.
Nothing on the transaction critical path waits for a scrape.  The one
exception is ``/pprof``, which *samples*: it runs a
:class:`~repro.obs.profiler.SamplingProfiler` on the handler thread for
the requested window (default 1 s, capped at 30 s), then folds in
whatever stacks the worker relays shipped during the window.  The output
is collapsed-stack text — feed it straight to a flamegraph renderer.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any
from urllib.parse import parse_qs, urlparse

if TYPE_CHECKING:
    from repro.db import Database

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_ENDPOINTS = {
    "/metrics": (
        "Prometheus text exposition "
        "(?format=openmetrics or Accept: application/openmetrics-text "
        "for OpenMetrics with exemplars)"
    ),
    "/healthz": "liveness + durability status (503 while degraded)",
    "/varz": "stable JSON metric snapshot",
    "/events": (
        "recent journal events "
        "(?component=&kind=&txn=&block=&request=&limit=)"
    ),
    "/timeline/<txn_id>": "causal timeline of one transaction",
    "/trace": "Chrome-trace document of spans + events (?trace=<id> filters)",
    "/pprof": "collapsed-stack wall-clock profile (?seconds=N&interval=MS)",
    "/slo": "per-tenant SLO burn rates and error budgets",
    "/request/<request_id>": "critical-path breakdown of one service request",
}

#: Longest profiling window one request may hold a handler thread for.
MAX_PPROF_SECONDS = 30.0


def _int_param(params: dict[str, list[str]], name: str) -> int | None:
    values = params.get(name)
    if not values:
        return None
    try:
        return int(values[0])
    except ValueError:
        raise ValueError(f"query parameter {name!r} must be an integer")


def _float_param(params: dict[str, list[str]], name: str) -> float | None:
    values = params.get(name)
    if not values:
        return None
    try:
        return float(values[0])
    except ValueError:
        raise ValueError(f"query parameter {name!r} must be a number")


def _relay_pools(db: Any) -> list[Any]:
    """Every started worker pool reachable from ``db`` (never spawns one).

    A plain :class:`~repro.db.Database` has at most one; a sharded cluster
    has one per shard that ever ran a parallel fragment.
    """
    pools = []
    pool = getattr(db, "_parallel_pool", None)
    if pool is not None:
        pools.append(pool)
    for shard in getattr(db, "shards", ()) or ():
        pool = getattr(shard, "_parallel_pool", None)
        if pool is not None:
            pools.append(pool)
    return pools


def _worker_profile_totals(db: Any) -> dict[str, int]:
    """Cumulative relayed worker stacks, summed across every pool."""
    totals: dict[str, int] = {}
    for pool in _relay_pools(db):
        relay = getattr(pool, "relay", None)
        if relay is None:
            continue
        for stack, count in relay.profile_stacks().items():
            totals[stack] = totals.get(stack, 0) + count
    return totals


class _ObsHandler(BaseHTTPRequestHandler):
    """Routes one request against the owning server's database."""

    server: "_ObsHTTPServer"
    protocol_version = "HTTP/1.1"

    # BaseHTTPRequestHandler logs every request to stderr by default;
    # scrapes arrive every few seconds, so count them instead.
    def log_message(self, format: str, *args: Any) -> None:
        pass

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        db = self.server.db
        db.obs.counter(
            "obs.http_requests_total", "monitoring endpoint requests served"
        ).inc()
        parsed = urlparse(self.path)
        path = parsed.path.rstrip("/") or "/"
        try:
            if path == "/metrics":
                self._serve_metrics(parse_qs(parsed.query))
            elif path == "/healthz":
                health = db.health()
                status = 200 if health["status"] == "ok" else 503
                self._respond_json(status, health)
            elif path == "/varz":
                from repro.obs.expo import snapshot

                self._respond_json(200, snapshot(db.obs))
            elif path == "/events":
                self._serve_events(parse_qs(parsed.query))
            elif path.startswith("/timeline/"):
                self._serve_timeline(path.removeprefix("/timeline/"))
            elif path == "/trace":
                self._serve_trace(parse_qs(parsed.query))
            elif path == "/pprof":
                self._serve_pprof(parse_qs(parsed.query))
            elif path == "/slo":
                self._serve_slo()
            elif path.startswith("/request/"):
                self._serve_request(path.removeprefix("/request/"))
            elif path == "/":
                self._respond_json(200, {"endpoints": _ENDPOINTS})
            else:
                self._respond_json(404, {"error": f"no such endpoint: {path}"})
        except ValueError as exc:
            self._respond_json(400, {"error": str(exc)})
        except Exception as exc:  # never kill the handler thread silently
            self._respond_json(500, {"error": repr(exc)})

    def _serve_metrics(self, params: dict[str, list[str]]) -> None:
        """Prometheus v0.0.4 by default; OpenMetrics 1.0 (with exemplars)
        when the scraper asks via ``?format=openmetrics`` or an ``Accept``
        header naming ``application/openmetrics-text``."""
        db = self.server.db
        fmt = params.get("format", [None])[0]
        accept = self.headers.get("Accept", "")
        if fmt == "openmetrics" or "application/openmetrics-text" in accept:
            from repro.obs.expo import OPENMETRICS_CONTENT_TYPE, render_openmetrics

            self._respond(
                200, render_openmetrics(db.obs), OPENMETRICS_CONTENT_TYPE
            )
            return
        if fmt is not None and fmt != "prometheus":
            raise ValueError(
                f"unknown metrics format {fmt!r}; use 'prometheus' or "
                "'openmetrics'"
            )
        from repro.obs.expo import render_prometheus

        self._respond(200, render_prometheus(db.obs), PROMETHEUS_CONTENT_TYPE)

    def _serve_events(self, params: dict[str, list[str]]) -> None:
        db = self.server.db
        limit = _int_param(params, "limit")
        events = db.recorder.events(
            component=params.get("component", [None])[0],
            kind=params.get("kind", [None])[0],
            txn_id=_int_param(params, "txn"),
            block_id=_int_param(params, "block"),
            request_id=_int_param(params, "request"),
            limit=limit if limit is not None else 250,
        )
        self._respond_json(
            200,
            {
                "events": [e.to_dict() for e in events],
                "dropped_total": db.recorder.events_dropped,
            },
        )

    def _serve_trace(self, params: dict[str, list[str]]) -> None:
        from repro.obs.recorder import render_chrome_trace

        db = self.server.db
        request_log = getattr(db, "request_log", None)
        requests = request_log.recent(limit=250) if request_log is not None else None
        self._respond(
            200,
            render_chrome_trace(
                db.recorder,
                trace_id=_int_param(params, "trace"),
                requests=requests,
            ),
            "application/json; charset=utf-8",
        )

    def _serve_slo(self) -> None:
        slo = getattr(self.server.db, "slo", None)
        if slo is None:
            self._respond_json(
                404, {"error": "this database has no SLO tracker"}
            )
            return
        self._respond_json(200, slo.report())

    def _serve_request(self, raw_id: str) -> None:
        """The critical-path breakdown of one service request, addressable
        by request id or by trace id (``/request/trace:<hex>`` — the form
        an exemplar or response envelope hands you)."""
        request_log = getattr(self.server.db, "request_log", None)
        if request_log is None:
            self._respond_json(
                404, {"error": "this database has no request log"}
            )
            return
        if raw_id.startswith("trace:"):
            lifecycle = request_log.by_trace(raw_id.removeprefix("trace:"))
        else:
            try:
                lifecycle = request_log.get(int(raw_id))
            except ValueError:
                raise ValueError(
                    "request id must be an integer or trace:<hex>, got "
                    f"{raw_id!r}"
                )
        if lifecycle is None:
            self._respond_json(
                404, {"error": f"no recorded request {raw_id!r}"}
            )
            return
        self._respond_json(200, lifecycle.to_dict())

    def _serve_pprof(self, params: dict[str, list[str]]) -> None:
        """Profile the coordinator for ``?seconds=N`` and respond with
        collapsed stacks (coordinator threads sampled here, worker stacks
        from whatever the relays shipped during the window)."""
        import time as _time

        from repro.obs.profiler import SamplingProfiler, render_collapsed

        db = self.server.db
        seconds = _float_param(params, "seconds")
        seconds = 1.0 if seconds is None else seconds
        if seconds <= 0:
            raise ValueError("query parameter 'seconds' must be positive")
        seconds = min(seconds, MAX_PPROF_SECONDS)
        interval_ms = _float_param(params, "interval")
        interval = (interval_ms / 1000.0) if interval_ms else 0.005
        if interval <= 0:
            raise ValueError("query parameter 'interval' must be positive")

        worker_before = _worker_profile_totals(db)
        profiler = SamplingProfiler(interval=interval)
        recorder = getattr(db, "recorder", None)
        previous = getattr(recorder, "profiler", None) if recorder else None
        # Publish the live profiler so slow-txn events recorded during the
        # window pick up top-of-stack attribution.
        if recorder is not None:
            recorder.profiler = profiler
        try:
            profiler.start()
            _time.sleep(seconds)
            profiler.stop()
        finally:
            if recorder is not None:
                recorder.profiler = previous
        stacks = dict(profiler.snapshot())
        for stack, count in _worker_profile_totals(db).items():
            delta = count - worker_before.get(stack, 0)
            if delta > 0:
                stacks[stack] = stacks.get(stack, 0) + delta
        self._respond(200, render_collapsed(stacks), "text/plain; charset=utf-8")

    def _serve_timeline(self, raw_id: str) -> None:
        try:
            txn_id = int(raw_id)
        except ValueError:
            raise ValueError(f"timeline id must be an integer, got {raw_id!r}")
        timeline = self.server.db.timeline(txn_id)
        if not timeline["events"]:
            self._respond_json(
                404, {"error": f"no journal events for transaction {txn_id}"}
            )
            return
        self._respond_json(200, timeline)

    def _respond_json(self, status: int, payload: dict[str, Any]) -> None:
        self._respond(
            status,
            json.dumps(payload, indent=2, sort_keys=True, default=str),
            "application/json; charset=utf-8",
        )

    def _respond(self, status: int, body: str, content_type: str) -> None:
        raw = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(raw)))
        self.end_headers()
        self.wfile.write(raw)


class _ObsHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], db: "Database") -> None:
        super().__init__(address, _ObsHandler)
        self.db = db


class ObsServer:
    """Lifecycle wrapper around the monitoring HTTP server.

    ``port=0`` binds an ephemeral port; read the actual one from
    :attr:`port` (or :attr:`url`).  ``stop()`` is idempotent.
    """

    def __init__(self, db: "Database", host: str = "127.0.0.1", port: int = 0) -> None:
        self.db = db
        self.host = host
        self._httpd = _ObsHTTPServer((host, port), db)
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The actually bound port."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ObsServer":
        """Serve on a daemon thread; returns self for chaining."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            daemon=True,
            name="obs-server",
        )
        self._thread.start()
        # Registered on start, unregistered on stop: a start/stop cycle
        # must leave the registry exactly as it found it (each restart
        # would otherwise strand a gauge whose callback pins a dead
        # server object).
        self.db.obs.gauge(
            "obs.server_up",
            "1 while the monitoring HTTP server accepts scrapes",
            callback=lambda: 1.0 if self._thread is not None else 0.0,
        )
        return self

    def stop(self) -> None:
        """Shut down, release the socket, and unregister the gauges this
        server added (idempotent — repeated stops, or stop after a failed
        start, are no-ops)."""
        thread, self._thread = self._thread, None
        if thread is not None:
            self._httpd.shutdown()
            thread.join()
            self.db.obs.unregister("obs.server_up")
        self._httpd.server_close()
