"""Cross-process telemetry relay: worker metrics/events/spans → coordinator.

Worker processes (:mod:`repro.parallel.worker`) cannot write into the
coordinator's metric registry or flight recorder — those are thread-local
sharded, in-process structures.  Instead each worker runs a
:class:`WorkerTelemetry`: its own tiny :class:`MetricRegistry`, a bounded
event staging buffer, its own :class:`Tracer` (span ids salted with the
worker pid so they are globally unique and need no remapping), and an
optional in-worker sampling profiler.  ``flush()`` packages the *deltas*
since the last flush — counter increments, histogram bucket deltas, staged
events, drained spans, profile stacks — plus a ``(wall, perf)`` clock pair,
and the pool piggybacks that payload on the worker's result queue (one
flush per completed task, one final flush at shutdown).

Coordinator-side, :class:`TelemetryRelay.merge` folds a payload in:

- metrics land in the main registry as labeled series
  (``process="worker"``, ``worker_id="<i>"``),
- events are clock-aligned and ingested into the flight recorder with a
  ``worker<i>`` process tag,
- spans are clock-aligned and ingested into the coordinator tracer —
  worker roots already carry the dispatching span's trace context
  (:func:`repro.obs.trace.Tracer.activate` runs around every task), so the
  result is one causal tree spanning processes,
- profile stacks accumulate under a ``worker<i>;`` prefix for ``/pprof``.

**Clock alignment**: worker timestamps are the *worker's*
``perf_counter()``, whose epoch is arbitrary per process.  Each flush
carries ``(time.time(), perf_counter())`` sampled together; wall clocks
are shared across processes, so ``offset = (w_wall - w_perf) -
(c_wall - c_perf)`` maps worker perf timestamps onto the coordinator's
perf axis (error is bounded by wall-clock skew ≈ 0 on one host plus
sampling jitter, microseconds — fine for trace rendering).

**Exact drop accounting across SIGKILL**: a worker that dies mid-task
takes its staged-but-unshipped events with it, and the coordinator cannot
ask a corpse how many there were.  So the pool owns a tiny shared-memory
:class:`TelemetryPage` (one cacheline of uint64 slots per worker); the
worker increments its ``events staged`` slot on *every* record, before
the event is shippable.  The page survives the worker, so on reap::

    dropped = page.events_staged[i] - relay.events_acked[i]

is exact, and the relay folds it into ``obs.events_dropped_total`` —
the same counter ring evictions use, preserving the PR 4 invariant that
the drop counter accounts for every journal loss.
"""

from __future__ import annotations

import atexit
import itertools
import os
import threading
import time
from collections import deque
from time import perf_counter
from typing import Any

from repro.obs.recorder import Event, Recorder
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    STATE,
    label_suffix,
)
from repro.obs.trace import Span, TraceContext, Tracer, get_tracer

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import shared_memory as _shm

    HAVE_SHARED_MEMORY = True
except ImportError:  # pragma: no cover
    _shm = None  # type: ignore[assignment]
    HAVE_SHARED_MEMORY = False

#: Process-wide page sequence so two pools never collide on names.
_PAGE_SEQ = itertools.count()

#: uint64 slots per worker — one 64-byte cacheline, no false sharing.
SLOTS_PER_WORKER = 8
IDX_EVENTS_STAGED = 0
IDX_SPANS_STAGED = 1

DEFAULT_EVENT_CAPACITY = 2048
DEFAULT_PROFILE_INTERVAL = 0.01

#: Relayed worker metric series get these labels (plus ``worker_id``).
WORKER_PROCESS_LABEL = "worker"


def _worker_span_id_base(pid: int) -> int:
    """Salt worker-local span ids with the pid: globally unique, so the
    relay ingests spans verbatim and cross-flush parent links stay valid."""
    return ((pid & 0xFFFFF) << 40) + 1


class TelemetryPage:
    """Per-worker uint64 counters in shared memory that outlive the worker.

    Single-writer per slot (the worker), single-reader (the coordinator);
    8-byte aligned stores are atomic on every platform CPython runs on,
    and the exactness argument only needs the value *after* the worker is
    dead, when no writer exists at all.
    """

    def __init__(self, num_workers: int, name: str | None = None) -> None:
        if not HAVE_SHARED_MEMORY:
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        self.num_workers = num_workers
        self._owner = name is None
        size = num_workers * SLOTS_PER_WORKER * 8
        if self._owner:
            name = f"repro-{os.getpid():x}-tel-{next(_PAGE_SEQ)}"
            self._shm = _shm.SharedMemory(name=name, create=True, size=size)
            self._shm.buf[:size] = bytes(size)
        else:
            self._shm = _shm.SharedMemory(name=name)
        self.name = name
        self._view = memoryview(self._shm.buf).cast("Q")
        self._closed = False
        if self._owner:
            # A bound method would keep the page alive through atexit even
            # after close(); register a handle we can unregister instead.
            self._atexit_cb = self.close
            atexit.register(self._atexit_cb)

    @classmethod
    def attach(cls, name: str, num_workers: int) -> "TelemetryPage":
        return cls(num_workers, name=name)

    def _slot(self, worker: int, idx: int) -> int:
        return worker * SLOTS_PER_WORKER + idx

    def add(self, worker: int, idx: int, amount: int = 1) -> None:
        self._view[self._slot(worker, idx)] += amount

    def read(self, worker: int, idx: int) -> int:
        return int(self._view[self._slot(worker, idx)])

    def reset_worker(self, worker: int) -> None:
        base = worker * SLOTS_PER_WORKER
        for i in range(SLOTS_PER_WORKER):
            self._view[base + i] = 0

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._owner:
            atexit.unregister(self._atexit_cb)
        self._view.release()
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


# ---------------------------------------------------------------------- #
# worker side                                                             #
# ---------------------------------------------------------------------- #


class WorkerTelemetry:
    """The worker-process end of the relay.

    Owns the worker's registry/tracer/event staging, and packages deltas
    for shipping.  Everything here runs on the worker's task loop thread
    (plus, optionally, its sampler thread), so no locking beyond what the
    instruments themselves do.
    """

    def __init__(
        self,
        worker_index: int,
        page_name: str | None = None,
        num_workers: int | None = None,
        profile: bool = False,
        profile_interval: float = DEFAULT_PROFILE_INTERVAL,
        event_capacity: int = DEFAULT_EVENT_CAPACITY,
    ) -> None:
        self.worker_index = worker_index
        self.registry = MetricRegistry()
        self.tracer = Tracer()
        self.tracer._ids = itertools.count(_worker_span_id_base(os.getpid()))
        self.event_capacity = event_capacity
        self._events: deque[tuple] = deque()
        self._events_dropped = 0
        self._last_shipped: dict[str, Any] = {}
        self.page: TelemetryPage | None = None
        if page_name is not None and HAVE_SHARED_MEMORY:
            try:
                self.page = TelemetryPage.attach(
                    page_name, num_workers or worker_index + 1
                )
            except Exception:  # pragma: no cover - page raced with shutdown
                self.page = None
        self.profiler = None
        if profile:
            from repro.obs.profiler import SamplingProfiler

            self.profiler = SamplingProfiler(interval=profile_interval)
            self.profiler.start()

    # ------------------------------------------------------------------ #
    # recording                                                            #
    # ------------------------------------------------------------------ #

    def record(
        self,
        kind: str,
        txn_id: int | None = None,
        block_id: int | None = None,
        **attrs: Any,
    ) -> None:
        """Stage one event for the next flush.

        The shared-memory staged counter is bumped *first*: an event is
        accounted the moment it exists, so a SIGKILL between staging and
        shipping shows up as an exact drop on the coordinator.
        """
        if not STATE.enabled:
            return
        if self.page is not None:
            self.page.add(self.worker_index, IDX_EVENTS_STAGED, 1)
        if len(self._events) >= self.event_capacity:
            self._events.popleft()
            self._events_dropped += 1
        self._events.append(
            (
                perf_counter(),
                kind,
                threading.current_thread().name,
                txn_id,
                block_id,
                attrs or None,
            )
        )

    def span(self, name: str, **attrs):
        if self.page is not None:
            self.page.add(self.worker_index, IDX_SPANS_STAGED, 1)
        return self.tracer.span(name, **attrs)

    def activated(self, ctx: tuple | None):
        """Scope a task under the coordinator's dispatch trace context."""
        return self.tracer.activate(
            TraceContext(*ctx) if ctx is not None else None
        )

    def counter(self, name: str, help: str = "") -> Counter:
        return self.registry.counter(name, help)

    def histogram(self, name: str, help: str = "", buckets=None) -> Histogram:
        if buckets is None:
            return self.registry.histogram(name, help)
        return self.registry.histogram(name, help, buckets)

    # ------------------------------------------------------------------ #
    # shipping                                                             #
    # ------------------------------------------------------------------ #

    def _metric_deltas(self) -> dict[str, list]:
        counters: list[tuple] = []
        gauges: list[tuple] = []
        histograms: list[tuple] = []
        last = self._last_shipped
        for inst in self.registry:
            key = inst.name + label_suffix(inst.labels)
            if isinstance(inst, Counter):
                value = inst.value
                delta = value - last.get(key, 0.0)
                if delta:
                    counters.append((inst.name, inst.help, delta))
                    last[key] = value
            elif isinstance(inst, Gauge):
                value = inst.value
                if value != last.get(key):
                    gauges.append((inst.name, inst.help, value))
                    last[key] = value
            elif isinstance(inst, Histogram):
                snap = inst.snapshot()
                prev_counts, prev_sum = last.get(
                    key, ([0] * len(snap.counts), 0.0)
                )
                delta_counts = [
                    c - p for c, p in zip(snap.counts, prev_counts)
                ]
                if any(delta_counts):
                    histograms.append(
                        (
                            inst.name,
                            inst.help,
                            snap.bounds,
                            delta_counts,
                            snap.sum - prev_sum,
                        )
                    )
                    last[key] = (snap.counts, snap.sum)
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def flush(self, ctx: tuple | None = None) -> dict[str, Any]:
        """Everything staged since the last flush, as one picklable dict."""
        events = list(self._events)
        self._events.clear()
        dropped, self._events_dropped = self._events_dropped, 0
        profile = None
        if self.profiler is not None:
            profile = self.profiler.drain()
        return {
            "worker": self.worker_index,
            "wall": time.time(),
            "perf": perf_counter(),
            "ctx": tuple(ctx) if ctx is not None else None,
            "events": events,
            "events_dropped": dropped,
            "spans": [
                (
                    s.span_id,
                    s.parent_id,
                    s.name,
                    s.start,
                    s.duration,
                    s.child_seconds,
                    s.thread,
                    s.trace_id,
                    s.attrs,
                )
                for s in self.tracer.drain()
            ],
            "metrics": self._metric_deltas(),
            "profile": profile or None,
        }

    def close(self) -> None:
        if self.profiler is not None:
            self.profiler.stop()
        if self.page is not None:
            # Attach-side close only (never unlink — the coordinator owns
            # the page and must still read it after we are gone).
            self.page.close()
            self.page = None


# ---------------------------------------------------------------------- #
# coordinator side                                                        #
# ---------------------------------------------------------------------- #


class TelemetryRelay:
    """The coordinator end: owns the page, merges worker payloads."""

    def __init__(
        self,
        num_workers: int,
        registry: MetricRegistry,
        recorder: Recorder | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.num_workers = num_workers
        self.registry = registry
        self.recorder = recorder
        # Not ``tracer or ...``: Tracer defines __len__, so an *empty*
        # tracer is falsy and would be silently swapped for the default.
        self.tracer = tracer if tracer is not None else get_tracer()
        self.page: TelemetryPage | None = None
        if HAVE_SHARED_MEMORY:
            try:
                self.page = TelemetryPage(num_workers)
            except Exception:  # pragma: no cover - /dev/shm exhausted
                self.page = None
        #: Events per worker this relay has accounted for (shipped or
        #: reported dropped by the worker itself).
        self.events_acked = [0] * num_workers
        #: Latest per-worker clock offset (worker perf → coordinator perf).
        self.clock_offsets: list[float | None] = [None] * num_workers
        self._profile_stacks: dict[str, int] = {}
        self._lock = threading.Lock()
        self._m_batches = registry.counter(
            "obs.relay_batches_total", "telemetry payloads merged from workers"
        )
        self._m_events = registry.counter(
            "obs.relay_events_total", "worker events relayed into the journal"
        )
        self._m_spans = registry.counter(
            "obs.relay_spans_total", "worker spans relayed into the tracer"
        )

    def worker_args(self) -> dict[str, Any]:
        """Constructor kwargs for the worker-side :class:`WorkerTelemetry`."""
        return {
            "page_name": self.page.name if self.page is not None else None,
            "num_workers": self.num_workers,
        }

    # ------------------------------------------------------------------ #
    # merge                                                                #
    # ------------------------------------------------------------------ #

    def merge(self, payload: dict[str, Any]) -> None:
        """Fold one worker flush into the coordinator's registry,
        recorder, tracer, and profile accumulator."""
        index = payload["worker"]
        offset = (payload["wall"] - payload["perf"]) - (
            time.time() - perf_counter()
        )
        labels = {
            "process": WORKER_PROCESS_LABEL,
            "worker_id": str(index),
        }
        process = f"worker{index}"
        ctx = payload.get("ctx")
        with self._lock:
            self.clock_offsets[index] = offset
            self._m_batches.inc()

            metrics = payload.get("metrics") or {}
            for name, help_, delta in metrics.get("counters", ()):
                self.registry.counter(name, help_, labels=labels).inc(delta)
            for name, help_, value in metrics.get("gauges", ()):
                self.registry.gauge(name, help_, labels=labels).set(value)
            for name, help_, bounds, counts, total in metrics.get(
                "histograms", ()
            ):
                self.registry.histogram(
                    name, help_, buckets=bounds, labels=labels
                ).merge_counts(counts, total)

            events = payload.get("events") or ()
            dropped = payload.get("events_dropped", 0)
            if 0 <= index < len(self.events_acked):
                self.events_acked[index] += len(events) + dropped
            if self.recorder is not None:
                if dropped:
                    self.recorder.count_dropped(dropped)
                    self.recorder.record(
                        "obs.relay_dropped",
                        worker=index,
                        events=dropped,
                        reason="worker_staging_overflow",
                    )
                if events:
                    ingested = []
                    for ts, kind, thread, txn_id, block_id, attrs in events:
                        if ctx is not None:
                            attrs = dict(attrs or {})
                            attrs.setdefault("trace_id", ctx[0])
                        ingested.append(
                            Event(
                                0,
                                ts + offset,
                                kind,
                                thread,
                                txn_id,
                                block_id,
                                attrs,
                                process=process,
                            )
                        )
                    self.recorder.ingest(ingested)
                    self._m_events.inc(len(ingested))

            spans = payload.get("spans") or ()
            if spans:
                # Worker span ids are pid-salted (globally unique) and
                # worker roots were parented to the dispatch context by
                # ``Tracer.activate`` inside the worker, so ingest verbatim
                # — only the clock needs aligning.
                self.tracer.ingest(
                    [
                        Span(
                            span_id,
                            parent_id,
                            name,
                            start + offset,
                            duration,
                            child_seconds,
                            thread,
                            trace_id,
                            attrs,
                            process=process,
                        )
                        for (
                            span_id,
                            parent_id,
                            name,
                            start,
                            duration,
                            child_seconds,
                            thread,
                            trace_id,
                            attrs,
                        ) in spans
                    ]
                )
                self._m_spans.inc(len(spans))

            profile = payload.get("profile")
            if profile:
                stacks = self._profile_stacks
                for stack, count in profile.items():
                    key = f"{process};{stack}"
                    stacks[key] = stacks.get(key, 0) + count

    # ------------------------------------------------------------------ #
    # death accounting                                                     #
    # ------------------------------------------------------------------ #

    def note_worker_death(self, index: int) -> int:
        """Settle a dead (or cleanly exited) worker's event account.

        Returns the number of staged-but-never-shipped events, which are
        charged to ``obs.events_dropped_total``.  Exact: the shm staged
        counter was written by the worker before each event existed, and
        ``events_acked`` counts everything that reached us.  Zero for a
        clean shutdown (the final flush drains everything first).
        """
        if self.page is None or not (0 <= index < self.num_workers):
            return 0
        staged = self.page.read(index, IDX_EVENTS_STAGED)
        with self._lock:
            dropped = staged - self.events_acked[index]
            self.page.reset_worker(index)
            self.events_acked[index] = 0
        if dropped > 0:
            if self.recorder is not None:
                self.recorder.count_dropped(dropped)
                self.recorder.record(
                    "obs.relay_dropped",
                    worker=index,
                    events=dropped,
                    reason="worker_died",
                )
        return max(0, dropped)

    # ------------------------------------------------------------------ #
    # reads                                                                #
    # ------------------------------------------------------------------ #

    def profile_stacks(self) -> dict[str, int]:
        """Accumulated ``worker<i>;thread;frames...`` stacks (a copy)."""
        with self._lock:
            return dict(self._profile_stacks)

    def clock_offset(self, index: int) -> float | None:
        return self.clock_offsets[index]

    def close(self) -> None:
        if self.page is not None:
            self.page.close()
            self.page = None
