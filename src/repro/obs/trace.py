"""Trace spans: nestable timing scopes feeding a bounded ring buffer.

``with span("wal.group_commit"): ...`` records one :class:`Span` per exit
into a :class:`Tracer`'s ring buffer (a ``deque(maxlen=...)`` — old spans
fall off, memory stays bounded).  Spans nest through a per-thread stack,
so every record knows its parent and every parent accumulates its
children's time; ``self_seconds`` is the span's *exclusive* duration —
the number Figure 12b's phase-breakdown series wants.

Spans also carry a **trace id**: the outermost span of a nest mints one,
every descendant inherits it, and a compact :class:`TraceContext`
``(trace_id, span_id)`` can be shipped across a process or shard boundary
and re-activated there (``with tracer.activate(ctx): ...``), so the 2PC
coordinator, per-shard participant work, and scan/export fragments in
worker processes all land in one causal tree.  Remote spans come back via
:meth:`Tracer.ingest`, which re-ids them into the local id space.

When observability is disabled (``obs.configure(enabled=False)``) the
``span`` call returns a shared no-op context manager: no clock reads, no
allocation, no buffer traffic.

A :class:`TailSampler` may be installed on a tracer
(``tracer.set_tail_sampler(...)``): finished spans are then held per
trace until the trace's **root** span closes, at which point the whole
trace is either flushed to the ring buffer (root slower than the
threshold, in the top-k reservoir of slowest roots, or explicitly
``mark``-ed — how shed/errored/degraded requests are retained) or
dropped with exact accounting.  That is tail-based sampling: the keep
decision waits until the outcome is known, so slow/broken requests keep
their full trace while the bulk of healthy traffic costs no buffer
space.
"""

from __future__ import annotations

import itertools
import os
import threading
from collections import deque
from time import perf_counter
from typing import Iterator, NamedTuple

from repro.obs.registry import STATE

DEFAULT_CAPACITY = 4096

#: Process-wide trace-id sequence, salted with the pid so ids minted in
#: different processes (coordinator vs. workers) can never collide.
_TRACE_IDS = itertools.count(1)


def new_trace_id() -> int:
    return ((os.getpid() & 0xFFFFF) << 40) | next(_TRACE_IDS)


class TraceContext(NamedTuple):
    """The compact wire form of "where in the tree am I": a trace id and
    the span id of the remote parent.  Picklable, cheap, immutable."""

    trace_id: int
    span_id: int


class Span:
    """One finished timing scope."""

    __slots__ = (
        "span_id", "parent_id", "name", "start", "duration",
        "child_seconds", "thread", "trace_id", "attrs", "process",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        name: str,
        start: float,
        duration: float,
        child_seconds: float,
        thread: str,
        trace_id: int | None = None,
        attrs: dict | None = None,
        process: str | None = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.duration = duration
        self.child_seconds = child_seconds
        self.thread = thread
        self.trace_id = trace_id
        self.attrs = attrs
        self.process = process

    @property
    def self_seconds(self) -> float:
        """Duration exclusive of nested spans (never below zero)."""
        return max(0.0, self.duration - self.child_seconds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, "
            f"self={self.self_seconds * 1e3:.3f}ms)"
        )


class SpanSummary:
    """Per-name aggregate over a batch of spans."""

    __slots__ = ("name", "count", "total_seconds", "self_seconds", "max_seconds")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_seconds = 0.0
        self.self_seconds = 0.0
        self.max_seconds = 0.0

    def add(self, span: Span) -> None:
        self.count += 1
        self.total_seconds += span.duration
        self.self_seconds += span.self_seconds
        self.max_seconds = max(self.max_seconds, span.duration)


class _ActiveSpan:
    """Context manager for one live scope (class-based: no generator cost)."""

    __slots__ = (
        "_tracer", "name", "start", "child_seconds", "_parent",
        "span_id", "trace_id", "attrs", "_remote_parent_id",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict | None) -> None:
        self._tracer = tracer
        self.name = name
        self.child_seconds = 0.0
        self.attrs = attrs

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        self.span_id = next(tracer._ids)
        stack = tracer._stack()
        self._parent = parent = stack[-1] if stack else None
        self._remote_parent_id = None
        if parent is not None:
            self.trace_id = parent.trace_id
        else:
            remote = tracer._remote()
            if remote is not None:
                self.trace_id = remote.trace_id
                self._remote_parent_id = remote.span_id
            else:
                self.trace_id = new_trace_id()
        stack.append(self)
        self.start = perf_counter()
        return self

    def set_attr(self, key: str, value) -> None:
        """Attach/overwrite one attribute on the live span (e.g. a 2PC
        decision known only at exit time)."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs[key] = value

    def __exit__(self, *exc_info) -> None:
        duration = perf_counter() - self.start
        tracer = self._tracer
        stack = tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        parent = self._parent
        if parent is not None:
            parent.child_seconds += duration
            parent_id = parent.span_id
        else:
            parent_id = self._remote_parent_id
        span = Span(
            self.span_id,
            parent_id,
            self.name,
            self.start,
            duration,
            self.child_seconds,
            threading.current_thread().name,
            self.trace_id,
            self.attrs,
        )
        sampler = tracer._sampler
        if sampler is None:
            tracer._buffer.append(span)
        else:
            # A span is the root of its local trace when it has no parent
            # at all — neither on this thread's stack nor activated from a
            # remote context.  Root close is the tail-sampling decision
            # point.
            sampler.offer(tracer, span, parent is None and parent_id is None)


class _NullSpan:
    """Shared do-nothing scope for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set_attr(self, key: str, value) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _ActivatedContext:
    """Scope during which new root spans parent to a remote context."""

    __slots__ = ("_tracer", "_ctx", "_prev")

    def __init__(self, tracer: "Tracer", ctx: TraceContext | None) -> None:
        self._tracer = tracer
        self._ctx = ctx

    def __enter__(self) -> "_ActivatedContext":
        local = self._tracer._local
        self._prev = getattr(local, "remote", None)
        local.remote = self._ctx
        return self

    def __exit__(self, *exc_info) -> None:
        self._tracer._local.remote = self._prev


class TailSampler:
    """Tail-based trace sampling with exact drop accounting.

    Finished spans are buffered per trace id; when the trace's root span
    closes the whole trace is judged at once:

    - **kept** when the root's duration meets ``threshold``, when the
      trace was :meth:`mark`-ed (the service marks shed/errored/degraded
      requests before the root closes), or when the root lands in the
      ``top_k`` reservoir of slowest roots seen so far;
    - **dropped** otherwise — every buffered span counted, never silently.

    Accounting is exact under concurrency: every span offered either
    reaches the tracer buffer (``kept_spans``) or increments
    ``dropped_spans`` (including spans of pending traces evicted at the
    ``max_pending`` bound and spans whose root never closes by
    :meth:`flush_pending` time), all under one lock.
    """

    def __init__(
        self,
        threshold: float | None = None,
        top_k: int = 0,
        max_pending: int = 512,
        registry=None,
    ) -> None:
        if threshold is None and top_k <= 0:
            raise ValueError(
                "tail sampler needs a slow threshold, a top-k reservoir, "
                "or both"
            )
        if max_pending < 1:
            raise ValueError("max_pending must be positive")
        self.threshold = threshold
        self.top_k = top_k
        self.max_pending = max_pending
        self._lock = threading.Lock()
        self._pending: dict[int, list[Span]] = {}
        self._order: deque[int] = deque()
        self._marked: dict[int, str] = {}
        #: Smallest-first root durations currently holding top-k slots.
        self._reservoir: list[float] = []
        self.kept_traces = 0
        self.kept_spans = 0
        self.dropped_traces = 0
        self.dropped_spans = 0
        self._m_kept = self._m_dropped = None
        if registry is not None:
            self._m_kept = registry.counter(
                "trace.tail_kept_total", "traces retained by the tail sampler"
            )
            self._m_dropped = registry.counter(
                "trace.tail_dropped_spans_total",
                "spans dropped at trace close by the tail sampler",
            )

    def mark(self, trace_id: int, reason: str = "marked") -> None:
        """Force-keep ``trace_id`` when its root closes (shed / errored /
        degraded requests).  Must be called before the root span exits."""
        with self._lock:
            self._marked[trace_id] = reason

    def offer(self, tracer: "Tracer", span: Span, is_root: bool) -> None:
        """Called by the tracer at span close; decides at root close."""
        if span.trace_id is None:
            tracer._buffer.append(span)
            return
        with self._lock:
            spans = self._pending.get(span.trace_id)
            if spans is None:
                if len(self._order) >= self.max_pending:
                    evicted_id = self._order.popleft()
                    evicted = self._pending.pop(evicted_id, ())
                    self._marked.pop(evicted_id, None)
                    self.dropped_traces += 1
                    self.dropped_spans += len(evicted)
                    if self._m_dropped is not None:
                        self._m_dropped.inc(len(evicted))
                spans = self._pending[span.trace_id] = []
                self._order.append(span.trace_id)
            spans.append(span)
            if not is_root:
                return
            del self._pending[span.trace_id]
            try:
                self._order.remove(span.trace_id)
            except ValueError:  # pragma: no cover - evicted concurrently
                pass
            reason = self._decide(span)
            if reason is not None:
                self.kept_traces += 1
                self.kept_spans += len(spans)
                if self._m_kept is not None:
                    self._m_kept.inc()
                tracer._buffer.extend(spans)
            else:
                self.dropped_traces += 1
                self.dropped_spans += len(spans)
                if self._m_dropped is not None:
                    self._m_dropped.inc(len(spans))

    def _decide(self, root: Span) -> str | None:
        """Keep reason for a closed root, or ``None`` to drop.  Caller
        holds the lock."""
        reason = self._marked.pop(root.trace_id, None)
        if reason is not None:
            return reason
        if self.threshold is not None and root.duration >= self.threshold:
            return "slow"
        if self.top_k > 0:
            reservoir = self._reservoir
            if len(reservoir) < self.top_k:
                reservoir.append(root.duration)
                reservoir.sort()
                return "top_k"
            if root.duration > reservoir[0]:
                reservoir[0] = root.duration
                reservoir.sort()
                return "top_k"
        return None

    def flush_pending(self) -> int:
        """Drop every trace still waiting for its root (server shutdown);
        returns the number of spans discarded — counted, as always."""
        with self._lock:
            discarded = sum(len(spans) for spans in self._pending.values())
            self.dropped_traces += len(self._pending)
            self.dropped_spans += discarded
            if self._m_dropped is not None and discarded:
                self._m_dropped.inc(discarded)
            self._pending.clear()
            self._order.clear()
            self._marked.clear()
        return discarded

    def stats(self) -> dict:
        with self._lock:
            return {
                "kept_traces": self.kept_traces,
                "kept_spans": self.kept_spans,
                "dropped_traces": self.dropped_traces,
                "dropped_spans": self.dropped_spans,
                "pending_traces": len(self._pending),
            }


class Tracer:
    """A bounded span sink with per-thread nesting stacks."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self._buffer: deque[Span] = deque(maxlen=capacity)
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._sampler: TailSampler | None = None

    def set_tail_sampler(self, sampler: TailSampler | None) -> None:
        """Install (or remove, with ``None``) tail-based sampling.  Spans
        ingested via :meth:`ingest` bypass the sampler — the relay ships
        only spans the remote side already chose to keep."""
        self._sampler = sampler

    def _stack(self) -> list:
        try:
            return self._local.stack
        except AttributeError:
            stack: list = []
            self._local.stack = stack
            return stack

    def _remote(self) -> TraceContext | None:
        return getattr(self._local, "remote", None)

    def span(self, name: str, **attrs) -> "_ActiveSpan | _NullSpan":
        """A context manager timing ``name`` (no-op while disabled)."""
        if not STATE.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, name, attrs or None)

    def activate(self, ctx: TraceContext | None) -> _ActivatedContext:
        """Adopt a remote parent: root spans opened inside the scope join
        ``ctx.trace_id`` with ``ctx.span_id`` as parent.  ``None`` is a
        no-op scope, so call sites can pass an optional context through."""
        return _ActivatedContext(self, ctx)

    def current_context(self) -> TraceContext | None:
        """The innermost live span on this thread as a shippable
        :class:`TraceContext` (falls back to an activated remote one)."""
        stack = self._stack()
        if stack:
            top = stack[-1]
            return TraceContext(top.trace_id, top.span_id)
        return self._remote()

    def next_span_id(self) -> int:
        return next(self._ids)

    def ingest(self, spans: list[Span]) -> None:
        """Append externally built spans (the telemetry relay re-ids
        worker spans into this tracer's id space before calling)."""
        self._buffer.extend(spans)

    def spans(self) -> list[Span]:
        """Snapshot of the buffer, oldest first."""
        return list(self._buffer)

    def drain(self) -> list[Span]:
        """Snapshot and clear."""
        out = self.spans()
        self._buffer.clear()
        return out

    def reset(self) -> None:
        self._buffer.clear()

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans())

    def summarize(self) -> dict[str, SpanSummary]:
        """Aggregate the buffered spans by name."""
        summaries: dict[str, SpanSummary] = {}
        for span in self.spans():
            summaries.setdefault(span.name, SpanSummary(span.name)).add(span)
        return summaries


#: The default tracer engine components record into.
_DEFAULT_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-default tracer."""
    return _DEFAULT_TRACER


def span(
    name: str, tracer: Tracer | None = None, **attrs
) -> "_ActiveSpan | _NullSpan":
    """Open a timing scope on ``tracer`` (default: the process tracer)."""
    if not STATE.enabled:
        return _NULL_SPAN
    return (tracer or _DEFAULT_TRACER).span(name, **attrs)


def activate(
    ctx: TraceContext | None, tracer: Tracer | None = None
) -> _ActivatedContext:
    """Module-level :meth:`Tracer.activate` on the default tracer."""
    return (tracer or _DEFAULT_TRACER).activate(ctx)


def current_context(tracer: Tracer | None = None) -> TraceContext | None:
    """Module-level :meth:`Tracer.current_context` on the default tracer."""
    return (tracer or _DEFAULT_TRACER).current_context()


def set_capacity(capacity: int) -> None:
    """Resize the default tracer's ring buffer (drops buffered spans)."""
    global _DEFAULT_TRACER
    _DEFAULT_TRACER = Tracer(capacity)
