"""Trace spans: nestable timing scopes feeding a bounded ring buffer.

``with span("wal.group_commit"): ...`` records one :class:`Span` per exit
into a :class:`Tracer`'s ring buffer (a ``deque(maxlen=...)`` — old spans
fall off, memory stays bounded).  Spans nest through a per-thread stack,
so every record knows its parent and every parent accumulates its
children's time; ``self_seconds`` is the span's *exclusive* duration —
the number Figure 12b's phase-breakdown series wants.

When observability is disabled (``obs.configure(enabled=False)``) the
``span`` call returns a shared no-op context manager: no clock reads, no
allocation, no buffer traffic.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from time import perf_counter
from typing import Iterator

from repro.obs.registry import STATE

DEFAULT_CAPACITY = 4096


class Span:
    """One finished timing scope."""

    __slots__ = (
        "span_id", "parent_id", "name", "start", "duration",
        "child_seconds", "thread",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        name: str,
        start: float,
        duration: float,
        child_seconds: float,
        thread: str,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.duration = duration
        self.child_seconds = child_seconds
        self.thread = thread

    @property
    def self_seconds(self) -> float:
        """Duration exclusive of nested spans (never below zero)."""
        return max(0.0, self.duration - self.child_seconds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, "
            f"self={self.self_seconds * 1e3:.3f}ms)"
        )


class SpanSummary:
    """Per-name aggregate over a batch of spans."""

    __slots__ = ("name", "count", "total_seconds", "self_seconds", "max_seconds")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_seconds = 0.0
        self.self_seconds = 0.0
        self.max_seconds = 0.0

    def add(self, span: Span) -> None:
        self.count += 1
        self.total_seconds += span.duration
        self.self_seconds += span.self_seconds
        self.max_seconds = max(self.max_seconds, span.duration)


class _ActiveSpan:
    """Context manager for one live scope (class-based: no generator cost)."""

    __slots__ = ("_tracer", "name", "start", "child_seconds", "_parent", "span_id")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self.name = name
        self.child_seconds = 0.0

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        self.span_id = next(tracer._ids)
        stack = tracer._stack()
        self._parent = stack[-1] if stack else None
        stack.append(self)
        self.start = perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        duration = perf_counter() - self.start
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        parent = self._parent
        if parent is not None:
            parent.child_seconds += duration
        self._tracer._buffer.append(
            Span(
                self.span_id,
                parent.span_id if parent is not None else None,
                self.name,
                self.start,
                duration,
                self.child_seconds,
                threading.current_thread().name,
            )
        )


class _NullSpan:
    """Shared do-nothing scope for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """A bounded span sink with per-thread nesting stacks."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self._buffer: deque[Span] = deque(maxlen=capacity)
        self._local = threading.local()
        self._ids = itertools.count(1)

    def _stack(self) -> list:
        try:
            return self._local.stack
        except AttributeError:
            stack: list = []
            self._local.stack = stack
            return stack

    def span(self, name: str) -> "_ActiveSpan | _NullSpan":
        """A context manager timing ``name`` (no-op while disabled)."""
        if not STATE.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, name)

    def spans(self) -> list[Span]:
        """Snapshot of the buffer, oldest first."""
        return list(self._buffer)

    def drain(self) -> list[Span]:
        """Snapshot and clear."""
        out = self.spans()
        self._buffer.clear()
        return out

    def reset(self) -> None:
        self._buffer.clear()

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans())

    def summarize(self) -> dict[str, SpanSummary]:
        """Aggregate the buffered spans by name."""
        summaries: dict[str, SpanSummary] = {}
        for span in self.spans():
            summaries.setdefault(span.name, SpanSummary(span.name)).add(span)
        return summaries


#: The default tracer engine components record into.
_DEFAULT_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-default tracer."""
    return _DEFAULT_TRACER


def span(name: str, tracer: Tracer | None = None) -> "_ActiveSpan | _NullSpan":
    """Open a timing scope on ``tracer`` (default: the process tracer)."""
    if not STATE.enabled:
        return _NULL_SPAN
    return (tracer or _DEFAULT_TRACER).span(name)


def set_capacity(capacity: int) -> None:
    """Resize the default tracer's ring buffer (drops buffered spans)."""
    global _DEFAULT_TRACER
    _DEFAULT_TRACER = Tracer(capacity)
