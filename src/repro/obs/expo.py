"""Exposition: Prometheus text format and a stable JSON snapshot.

Both renderers walk a :class:`~repro.obs.registry.MetricRegistry` in
name-sorted order, so output is deterministic and diffable.  Dotted metric
names become underscored in Prometheus (``txn.commit_seconds`` →
``txn_commit_seconds``); histograms expand to the standard
``_bucket{le=...}`` / ``_sum`` / ``_count`` family.

The Prometheus renderer follows the text-format spec (v0.0.4) to the
letter — ``# HELP`` / ``# TYPE`` exactly once per family with HELP first,
HELP text escaped (``\\`` and newlines), exactly one terminal
``le="+Inf"`` bucket whose value equals ``_count`` — and
``tests/obs/test_expo.py`` holds a line-level conformance test against
it.  Dotted names that sanitize to an already-emitted family (possible
only through adversarial naming) are skipped rather than emitting a
duplicate family.
"""

from __future__ import annotations

import json
import math
from typing import Any

from repro.obs.registry import Counter, Gauge, Histogram, MetricRegistry


def _prom_name(name: str) -> str:
    return name.replace(".", "_")


def _prom_value(value: float) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def _prom_bound(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    return format(bound, ".12g")


def _escape_help(text: str) -> str:
    """HELP text per the spec: escape backslash and line feed."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def render_prometheus(registry: MetricRegistry) -> str:
    """The registry in Prometheus text exposition format (v0.0.4)."""
    lines: list[str] = []
    emitted: set[str] = set()
    for instrument in registry:
        name = _prom_name(instrument.name)
        if name in emitted:
            # Two dotted names sanitized to one family; a second HELP/TYPE
            # block would be malformed, so only the first instrument wins.
            continue
        emitted.add(name)
        if instrument.help:
            lines.append(f"# HELP {name} {_escape_help(instrument.help)}")
        if isinstance(instrument, Counter):
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_prom_value(instrument.value)}")
        elif isinstance(instrument, Gauge):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_prom_value(instrument.value)}")
        elif isinstance(instrument, Histogram):
            snap = instrument.snapshot()
            lines.append(f"# TYPE {name} histogram")
            for bound, cumulative in snap.cumulative():
                lines.append(
                    f'{name}_bucket{{le="{_prom_bound(bound)}"}} {cumulative}'
                )
            lines.append(f"{name}_sum {_prom_value(snap.sum)}")
            lines.append(f"{name}_count {snap.count}")
    return "\n".join(lines) + "\n"


def snapshot(registry: MetricRegistry) -> dict[str, Any]:
    """A stable, JSON-serializable snapshot of every instrument.

    Shape::

        {"counters": {name: value},
         "gauges": {name: value},
         "histograms": {name: {"buckets": [[le, count], ...],
                               "sum": float, "count": int}}}

    Bucket counts are per-bucket (non-cumulative); the final bucket's
    ``le`` is ``"+Inf"``.
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, Any] = {}
    for instrument in registry:
        if isinstance(instrument, Counter):
            counters[instrument.name] = instrument.value
        elif isinstance(instrument, Gauge):
            gauges[instrument.name] = instrument.value
        elif isinstance(instrument, Histogram):
            snap = instrument.snapshot()
            bounds = [_prom_bound(b) for b in snap.bounds] + ["+Inf"]
            histograms[instrument.name] = {
                "buckets": [[le, count] for le, count in zip(bounds, snap.counts)],
                "sum": snap.sum,
                "count": snap.count,
            }
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def render_json(registry: MetricRegistry, indent: int | None = 2) -> str:
    """:func:`snapshot` serialized with sorted keys (stable across runs)."""
    return json.dumps(snapshot(registry), indent=indent, sort_keys=True)
