"""Exposition: Prometheus text format and a stable JSON snapshot.

Both renderers walk a :class:`~repro.obs.registry.MetricRegistry` in
name-sorted order, so output is deterministic and diffable.  Dotted metric
names become underscored in Prometheus (``txn.commit_seconds`` →
``txn_commit_seconds``); histograms expand to the standard
``_bucket{le=...}`` / ``_sum`` / ``_count`` family.
"""

from __future__ import annotations

import json
import math
from typing import Any

from repro.obs.registry import Counter, Gauge, Histogram, MetricRegistry


def _prom_name(name: str) -> str:
    return name.replace(".", "_")


def _prom_value(value: float) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def _prom_bound(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    return format(bound, ".12g")


def render_prometheus(registry: MetricRegistry) -> str:
    """The registry in Prometheus text exposition format (v0.0.4)."""
    lines: list[str] = []
    for instrument in registry:
        name = _prom_name(instrument.name)
        if instrument.help:
            lines.append(f"# HELP {name} {instrument.help}")
        if isinstance(instrument, Counter):
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_prom_value(instrument.value)}")
        elif isinstance(instrument, Gauge):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_prom_value(instrument.value)}")
        elif isinstance(instrument, Histogram):
            snap = instrument.snapshot()
            lines.append(f"# TYPE {name} histogram")
            for bound, cumulative in snap.cumulative():
                lines.append(
                    f'{name}_bucket{{le="{_prom_bound(bound)}"}} {cumulative}'
                )
            lines.append(f"{name}_sum {_prom_value(snap.sum)}")
            lines.append(f"{name}_count {snap.count}")
    return "\n".join(lines) + "\n"


def snapshot(registry: MetricRegistry) -> dict[str, Any]:
    """A stable, JSON-serializable snapshot of every instrument.

    Shape::

        {"counters": {name: value},
         "gauges": {name: value},
         "histograms": {name: {"buckets": [[le, count], ...],
                               "sum": float, "count": int}}}

    Bucket counts are per-bucket (non-cumulative); the final bucket's
    ``le`` is ``"+Inf"``.
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, Any] = {}
    for instrument in registry:
        if isinstance(instrument, Counter):
            counters[instrument.name] = instrument.value
        elif isinstance(instrument, Gauge):
            gauges[instrument.name] = instrument.value
        elif isinstance(instrument, Histogram):
            snap = instrument.snapshot()
            bounds = [_prom_bound(b) for b in snap.bounds] + ["+Inf"]
            histograms[instrument.name] = {
                "buckets": [[le, count] for le, count in zip(bounds, snap.counts)],
                "sum": snap.sum,
                "count": snap.count,
            }
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def render_json(registry: MetricRegistry, indent: int | None = 2) -> str:
    """:func:`snapshot` serialized with sorted keys (stable across runs)."""
    return json.dumps(snapshot(registry), indent=indent, sort_keys=True)
