"""Exposition: Prometheus text format and a stable JSON snapshot.

Both renderers walk a :class:`~repro.obs.registry.MetricRegistry` in
family-sorted order, so output is deterministic and diffable.  Dotted
metric names become underscored in Prometheus (``txn.commit_seconds`` →
``txn_commit_seconds``); histograms expand to the standard
``_bucket{le=...}`` / ``_sum`` / ``_count`` family.

The Prometheus renderer follows the text-format spec (v0.0.4) to the
letter — ``# HELP`` / ``# TYPE`` exactly once per family with HELP first,
all series of a family contiguous under that one block (labeled series —
``process``/``worker_id``/``shard`` from the cross-process telemetry
relay — are just extra samples of the family), HELP text and label values
escaped, exactly one terminal ``le="+Inf"`` bucket per series whose value
equals that series' ``_count`` — and ``tests/obs/test_expo.py`` holds a
line-level conformance test against it.  Dotted names that sanitize to an
already-emitted family of a *different* dotted name (possible only through
adversarial naming) are skipped rather than emitting a duplicate family.
"""

from __future__ import annotations

import json
import math
from typing import Any

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    label_suffix,
)


def _prom_name(name: str) -> str:
    return name.replace(".", "_")


def _prom_value(value: float) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def _prom_bound(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    return format(bound, ".12g")


def _escape_help(text: str) -> str:
    """HELP text per the spec: escape backslash and line feed."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    """Label values per the spec: escape backslash, quote, line feed."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_body(labels: dict[str, str]) -> str:
    """``k1="v1",k2="v2"`` (sorted, escaped) — no braces, composable
    with an extra ``le`` for histogram buckets."""
    return ",".join(
        f'{k}="{_escape_label(v)}"' for k, v in sorted(labels.items())
    )


def _labeled(name: str, labels: dict[str, str]) -> str:
    body = _label_body(labels)
    return f"{name}{{{body}}}" if body else name


def render_prometheus(registry: MetricRegistry) -> str:
    """The registry in Prometheus text exposition format (v0.0.4)."""
    lines: list[str] = []
    emitted: dict[str, str] = {}  # prometheus family -> dotted source name
    for instrument in registry:
        name = _prom_name(instrument.name)
        owner = emitted.get(name)
        if owner is None:
            # First series of the family: one HELP/TYPE block.  Registry
            # iteration is family-contiguous, so every further series of
            # this dotted name lands right below.
            emitted[name] = instrument.name
            if instrument.help:
                lines.append(f"# HELP {name} {_escape_help(instrument.help)}")
            if isinstance(instrument, Counter):
                lines.append(f"# TYPE {name} counter")
            elif isinstance(instrument, Gauge):
                lines.append(f"# TYPE {name} gauge")
            elif isinstance(instrument, Histogram):
                lines.append(f"# TYPE {name} histogram")
        elif owner != instrument.name:
            # Two dotted names sanitized to one family; a second HELP/TYPE
            # block would be malformed, so only the first dotted name wins.
            continue
        labels = instrument.labels
        if isinstance(instrument, (Counter, Gauge)):
            lines.append(
                f"{_labeled(name, labels)} {_prom_value(instrument.value)}"
            )
        elif isinstance(instrument, Histogram):
            snap = instrument.snapshot()
            body = _label_body(labels)
            prefix = body + "," if body else ""
            for bound, cumulative in snap.cumulative():
                lines.append(
                    f'{name}_bucket{{{prefix}le="{_prom_bound(bound)}"}} '
                    f"{cumulative}"
                )
            lines.append(
                f"{_labeled(name + '_sum', labels)} {_prom_value(snap.sum)}"
            )
            lines.append(f"{_labeled(name + '_count', labels)} {snap.count}")
    return "\n".join(lines) + "\n"


#: Content type the OpenMetrics exposition must be served under.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)


def _om_exemplar(exemplar) -> str:
    """The OpenMetrics exemplar suffix: `` # {labels} value timestamp``.

    The label set (a trace id) stays far under the spec's 128-rune cap.
    """
    return (
        f' # {{trace_id="{_escape_label(exemplar.trace_id)}"}} '
        f"{_prom_value(exemplar.value)} {exemplar.timestamp:.3f}"
    )


def render_openmetrics(registry: MetricRegistry) -> str:
    """The registry in OpenMetrics 1.0 text exposition format.

    Differences from the Prometheus v0.0.4 renderer, all spec-mandated:

    - counter *families* drop any ``_total`` suffix while their samples
      always carry one (``wal.flush_total`` → family ``wal_flush``,
      sample ``wal_flush_total``; ``wal.written_bytes`` → family
      ``wal_written_bytes``, sample ``wal_written_bytes_total``);
    - histogram ``_bucket`` samples may carry an exemplar suffix
      (`` # {trace_id="..."} value timestamp``) when one was captured —
      this is how a p99 bucket names a real offending request;
    - the exposition ends with ``# EOF``.

    Serve under :data:`OPENMETRICS_CONTENT_TYPE`.
    """
    lines: list[str] = []
    emitted: dict[str, str] = {}  # OpenMetrics family -> dotted source name
    for instrument in registry:
        name = _prom_name(instrument.name)
        if isinstance(instrument, Counter) and name.endswith("_total"):
            name = name[: -len("_total")]
        owner = emitted.get(name)
        if owner is None:
            emitted[name] = instrument.name
            if isinstance(instrument, Counter):
                lines.append(f"# TYPE {name} counter")
            elif isinstance(instrument, Gauge):
                lines.append(f"# TYPE {name} gauge")
            elif isinstance(instrument, Histogram):
                lines.append(f"# TYPE {name} histogram")
            if instrument.help:
                lines.append(f"# HELP {name} {_escape_help(instrument.help)}")
        elif owner != instrument.name:
            continue
        labels = instrument.labels
        if isinstance(instrument, Counter):
            lines.append(
                f"{_labeled(name + '_total', labels)} "
                f"{_prom_value(instrument.value)}"
            )
        elif isinstance(instrument, Gauge):
            lines.append(
                f"{_labeled(name, labels)} {_prom_value(instrument.value)}"
            )
        elif isinstance(instrument, Histogram):
            snap = instrument.snapshot()
            exemplars = instrument.exemplars()
            body = _label_body(labels)
            prefix = body + "," if body else ""
            for index, (bound, cumulative) in enumerate(snap.cumulative()):
                exemplar = exemplars.get(index)
                suffix = _om_exemplar(exemplar) if exemplar is not None else ""
                lines.append(
                    f'{name}_bucket{{{prefix}le="{_prom_bound(bound)}"}} '
                    f"{cumulative}{suffix}"
                )
            lines.append(
                f"{_labeled(name + '_sum', labels)} {_prom_value(snap.sum)}"
            )
            lines.append(f"{_labeled(name + '_count', labels)} {snap.count}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def snapshot(registry: MetricRegistry) -> dict[str, Any]:
    """A stable, JSON-serializable snapshot of every instrument.

    Shape::

        {"counters": {name: value},
         "gauges": {name: value},
         "histograms": {name: {"buckets": [[le, count], ...],
                               "sum": float, "count": int}}}

    Labeled series are keyed ``name{k="v",...}`` (canonical sorted label
    order); unlabeled series keep their bare name, so pre-label consumers
    see an unchanged shape.  Bucket counts are per-bucket
    (non-cumulative); the final bucket's ``le`` is ``"+Inf"``.
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, Any] = {}
    for instrument in registry:
        key = instrument.name + label_suffix(instrument.labels)
        if isinstance(instrument, Counter):
            counters[key] = instrument.value
        elif isinstance(instrument, Gauge):
            gauges[key] = instrument.value
        elif isinstance(instrument, Histogram):
            snap = instrument.snapshot()
            bounds = [_prom_bound(b) for b in snap.bounds] + ["+Inf"]
            histograms[key] = {
                "buckets": [[le, count] for le, count in zip(bounds, snap.counts)],
                "sum": snap.sum,
                "count": snap.count,
            }
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def render_json(registry: MetricRegistry, indent: int | None = 2) -> str:
    """:func:`snapshot` serialized with sorted keys (stable across runs)."""
    return json.dumps(snapshot(registry), indent=indent, sort_keys=True)
