"""A stdlib wall-clock sampling profiler (collapsed-stack output).

``sys._current_frames()`` gives every live thread's innermost frame; a
sampler thread wakes every ``interval`` seconds, walks each frame chain
root-first, and counts the *collapsed stack* — the semicolon-joined
``thread;file:func;file:func;...`` string flamegraph tools eat directly
(Brendan Gregg's ``flamegraph.pl``, speedscope, pyspy's collapsed mode).

This is deliberately a sampler, not a tracer: overhead is bounded by the
sampling rate (a few hundred dict increments per second) regardless of how
hot the profiled code is, so it is safe to run against a live database —
the ``/pprof?seconds=N`` endpoint on the monitoring server does exactly
that.  Worker processes run their own (opt-in) sampler and ship stack
deltas home through the telemetry relay, which prefixes them with
``worker<i>`` so one flamegraph spans the whole process tree.

The profiler also answers *point* queries: :meth:`top_of_stack` returns
the hottest innermost frame (optionally for one thread), which the flight
recorder folds into slow-transaction captures and the worker pool into
slow-fragment events — "the txn was slow *and this is where it was*".
"""

from __future__ import annotations

import sys
import threading
from time import perf_counter, sleep
from typing import Any, Mapping

DEFAULT_INTERVAL = 0.005  # 200 Hz: coarse enough to be cheap, fine enough to rank
MAX_STACK_DEPTH = 64


def fold_frame(frame: Any, max_depth: int = MAX_STACK_DEPTH) -> str:
    """One frame chain as ``file:func;...`` (root first, leaf last)."""
    parts: list[str] = []
    depth = 0
    while frame is not None and depth < max_depth:
        code = frame.f_code
        filename = code.co_filename.rsplit("/", 1)[-1]
        parts.append(f"{filename}:{code.co_name}")
        frame = frame.f_back
        depth += 1
    parts.reverse()
    return ";".join(parts)


def render_collapsed(stacks: Mapping[str, int]) -> str:
    """Counts as collapsed-stack text, hottest first (stable ties)."""
    lines = [
        f"{stack} {count}"
        for stack, count in sorted(
            stacks.items(), key=lambda kv: (-kv[1], kv[0])
        )
    ]
    return "\n".join(lines) + ("\n" if lines else "")


class SamplingProfiler:
    """Samples every thread's stack on a fixed wall-clock interval.

    ``stacks`` maps ``thread;frames...`` collapsed stacks to sample
    counts.  The sampler excludes its own thread.  Thread-safe reads are
    cheap (dict copy under the GIL); :meth:`drain` swaps the dict out, so
    a worker can ship deltas without pausing sampling.
    """

    def __init__(self, interval: float = DEFAULT_INTERVAL) -> None:
        self.interval = max(0.001, float(interval))
        self.stacks: dict[str, int] = {}
        self.samples_total = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.started_at: float | None = None

    # ------------------------------------------------------------------ #
    # lifecycle                                                            #
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self.started_at = perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=2.0)
        self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    # ------------------------------------------------------------------ #
    # sampling                                                             #
    # ------------------------------------------------------------------ #

    def sample_once(self) -> int:
        """Take one sample of every live thread; returns threads sampled."""
        own = threading.get_ident()
        names = {t.ident: t.name for t in threading.enumerate()}
        sampled = 0
        for ident, frame in sys._current_frames().items():
            if ident == own:
                continue
            thread_name = names.get(ident, f"thread-{ident}")
            key = f"{thread_name};{fold_frame(frame)}"
            self.stacks[key] = self.stacks.get(key, 0) + 1
            self.samples_total += 1
            sampled += 1
        return sampled

    # ------------------------------------------------------------------ #
    # reads                                                                #
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict[str, int]:
        return dict(self.stacks)

    def drain(self) -> dict[str, int]:
        """Take the accumulated stacks and reset (relay shipping)."""
        out, self.stacks = self.stacks, {}
        return out

    def collapsed(self) -> str:
        return render_collapsed(self.stacks)

    def top_of_stack(self, thread_name: str | None = None) -> str | None:
        """The hottest leaf frame, optionally restricted to one thread."""
        leaves: dict[str, int] = {}
        for stack, count in self.stacks.items():
            thread, _, frames = stack.partition(";")
            if thread_name is not None and thread != thread_name:
                continue
            leaf = frames.rsplit(";", 1)[-1] if frames else thread
            leaves[leaf] = leaves.get(leaf, 0) + count
        if not leaves:
            return None
        return max(leaves.items(), key=lambda kv: (kv[1], kv[0]))[0]


def profile(seconds: float, interval: float = DEFAULT_INTERVAL) -> SamplingProfiler:
    """Run a sampler for ``seconds`` (blocking) and return it stopped.

    This is the ``/pprof?seconds=N`` implementation: the HTTP handler
    thread blocks here while the sampler thread collects.
    """
    profiler = SamplingProfiler(interval=interval)
    profiler.start()
    try:
        sleep(max(0.0, float(seconds)))
    finally:
        profiler.stop()
    return profiler
