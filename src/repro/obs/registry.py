"""Metric primitives: sharded counters, gauges, fixed-bucket histograms.

The design goal is the same ride-along principle the access observer uses
(Section 4.2): *nothing on the transaction critical path may pay for
statistics collection*.  Every :class:`Counter` and :class:`Histogram`
therefore aggregates into **thread-local shards** — the hot-path increment
is one bounds-free list-cell add with no dict lookup and no lock — and the
shards are merged only when somebody *reads* the metric (a dashboard pull,
a ``Database.metrics()`` call, a Prometheus scrape).  Readers are rare and
slow; writers are constant and must be free.

A process-wide switch (:data:`STATE`, flipped by ``obs.configure``) turns
recording off entirely; the disabled path is a single attribute load and a
branch, measured by ``benchmarks/bench_ablation_obs_overhead.py``.

Naming convention (enforced): ``<component>.<event>[_seconds|_bytes|_total]``
— e.g. ``txn.commit_seconds``, ``wal.written_bytes``, ``gc.pass_total``.
Dots become underscores in the Prometheus exposition.

Instruments may carry **labels** (``registry.counter("parallel.tasks_total",
labels={"worker_id": "0"})``): each distinct label set is its own series
with its own shards, all series of a name form one *family* (same kind,
same exposition HELP/TYPE block), and the registry keys series by
``name + canonical-label-suffix`` so unlabeled lookups are untouched.
This is how relayed worker/shard telemetry stays attributable
(``process``/``worker_id``/``shard``) without inventing per-worker names.
"""

from __future__ import annotations

import math
import re
import threading
import time
from bisect import bisect_left
from typing import Any, Callable, Iterator, Mapping, NamedTuple, Sequence


class _ObsState:
    """The process-wide enable switch, shared by every instrument."""

    __slots__ = ("enabled", "exemplars")

    def __init__(self) -> None:
        self.enabled = True
        # Exemplar capture (histograms remembering the trace id behind the
        # last sample per bucket) is opt-in: flip via
        # ``obs.configure(exemplars=True)`` or the service config.
        self.exemplars = False


#: Checked by every hot-path record call; flip via ``obs.configure``.
STATE = _ObsState()

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")
_LABEL_NAME_RE = re.compile(r"^[a-z_][a-z0-9_]*$")

#: Latency buckets in seconds: 1 µs → 10 s, roughly logarithmic.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Size/count buckets: batch sizes, queue depths, byte counts.
DEFAULT_SIZE_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000,
    100_000, 1_000_000, 10_000_000,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"invalid metric name {name!r}; use <component>.<event> with "
            "lowercase letters, digits, and underscores"
        )
    return name


def _check_labels(labels: Mapping[str, Any] | None) -> dict[str, str]:
    """Normalise ``labels`` to a plain ``{str: str}`` dict (sorted keys)."""
    if not labels:
        return {}
    out: dict[str, str] = {}
    for key in sorted(labels):
        if not _LABEL_NAME_RE.match(str(key)):
            raise ValueError(
                f"invalid label name {key!r}; use lowercase letters, "
                "digits, and underscores"
            )
        out[str(key)] = str(labels[key])
    return out


def label_suffix(labels: Mapping[str, str] | None) -> str:
    """Canonical series suffix: ``{k="v",...}`` with sorted keys, or ``""``.

    Used as part of the registry key and in JSON snapshots; the Prometheus
    exposition rebuilds (and escapes) its own label string from the dict.
    """
    if not labels:
        return ""
    parts = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + parts + "}"


class Counter:
    """A monotonically increasing count, sharded per thread.

    Each thread owns a one-slot list cell registered in ``_shards``; the
    increment is ``cell[0] += amount`` — no dict hop, no lock.  Cells of
    finished threads stay registered (counters are cumulative, so their
    contribution remains correct forever).
    """

    __slots__ = ("name", "help", "labels", "_local", "_shards", "_lock")

    def __init__(
        self, name: str, help: str = "",
        labels: Mapping[str, str] | None = None,
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labels = _check_labels(labels)
        self._local = threading.local()
        self._shards: list[list[float]] = []
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (hot path: one cell add when enabled)."""
        if not STATE.enabled:
            return
        try:
            self._local.cell[0] += amount
        except AttributeError:
            cell = [amount]
            with self._lock:
                self._shards.append(cell)
            self._local.cell = cell

    @property
    def value(self) -> float:
        """Merged total across every thread that ever incremented."""
        with self._lock:
            return sum(cell[0] for cell in self._shards)

    def reset(self) -> None:
        """Zero all shards (checkpoint truncation, test isolation)."""
        with self._lock:
            for cell in self._shards:
                cell[0] = 0


class Gauge:
    """A point-in-time value: either set explicitly or computed on read.

    Callback gauges (``callback=lambda: ...``) evaluate at read time, so
    they track live engine state (active transactions, queue depth) with
    zero write-path cost.
    """

    __slots__ = ("name", "help", "labels", "callback", "_value")

    def __init__(
        self, name: str, help: str = "",
        callback: Callable[[], float] | None = None,
        labels: Mapping[str, str] | None = None,
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labels = _check_labels(labels)
        self.callback = callback
        self._value = 0.0

    def set(self, value: float) -> None:
        if not STATE.enabled:
            return
        self._value = value

    def inc(self, amount: float = 1) -> None:
        if not STATE.enabled:
            return
        self._value += amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        if self.callback is not None:
            return self.callback()
        return self._value


class _HistogramShard:
    __slots__ = ("counts", "total")

    def __init__(self, num_buckets: int) -> None:
        self.counts = [0] * num_buckets
        self.total = 0.0


class HistogramSnapshot:
    """A merged, immutable read of one histogram."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...], counts: list[int], total: float) -> None:
        self.bounds = bounds  # upper bound per bucket; final bucket is +Inf
        self.counts = counts  # per-bucket (non-cumulative), len(bounds) + 1
        self.sum = total
        self.count = sum(counts)

    def cumulative(self) -> list[tuple[float, int]]:
        """Prometheus-style ``(le, cumulative count)`` pairs incl. +Inf."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    @property
    def mean(self) -> float | None:
        return self.sum / self.count if self.count else None


class Exemplar(NamedTuple):
    """One remembered sample behind a histogram bucket: the observed value,
    the trace id (hex string) of the request that produced it, and a wall
    clock stamp — exactly what the OpenMetrics exposition needs to let a
    p99 bucket name a real offending request."""

    value: float
    trace_id: str
    timestamp: float


class Histogram:
    """Fixed upper-bound buckets (``le`` semantics), sharded per thread.

    ``observe`` is a bisect into a precomputed bounds tuple plus two cell
    writes — no allocation after a thread's first observation.

    When exemplar capture is enabled (``STATE.exemplars``) a call site may
    pass the trace id behind a sample; the histogram keeps the **last**
    exemplar per bucket in a plain dict (single-store writes are atomic
    under the GIL — last-writer-wins is exactly the semantics wanted, so
    no lock on the hot path).
    """

    __slots__ = (
        "name", "help", "labels", "_bounds", "_local", "_shards", "_lock",
        "_exemplars",
    )

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        labels: Mapping[str, str] | None = None,
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labels = _check_labels(labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram buckets must be sorted, unique, non-empty")
        # The +Inf bucket is implicit (the overflow slot); an explicit
        # trailing +Inf bound would double it in the exposition, so fold
        # it away here and keep every stored bound finite.
        if math.isinf(bounds[-1]):
            bounds = bounds[:-1]
        if not bounds or not all(math.isfinite(b) for b in bounds):
            raise ValueError("histogram buckets must contain finite bounds")
        self._bounds = bounds
        self._local = threading.local()
        self._shards: list[_HistogramShard] = []
        self._lock = threading.Lock()
        self._exemplars: dict[int, Exemplar] = {}

    @property
    def bounds(self) -> tuple[float, ...]:
        return self._bounds

    def _shard(self) -> _HistogramShard:
        try:
            return self._local.shard
        except AttributeError:
            shard = _HistogramShard(len(self._bounds) + 1)
            with self._lock:
                self._shards.append(shard)
            self._local.shard = shard
            return shard

    def observe(self, value: float, exemplar: str | None = None) -> None:
        """Record one sample; values above the last bound go to +Inf.

        ``exemplar`` is the trace id (hex string) of the request behind the
        sample; it is kept per bucket only when exemplar capture is on.
        """
        if not STATE.enabled:
            return
        shard = self._shard()
        index = bisect_left(self._bounds, value)
        shard.counts[index] += 1
        shard.total += value
        if exemplar is not None and STATE.exemplars:
            self._exemplars[index] = Exemplar(value, exemplar, time.time())

    def merge_counts(self, counts: Sequence[int], total: float) -> None:
        """Fold pre-binned counts in (telemetry relay: worker deltas).

        ``counts`` must come from a histogram with the same bounds; a
        longer vector (bounds drift) folds the excess into +Inf rather
        than dropping samples.
        """
        if not STATE.enabled:
            return
        shard = self._shard()
        last = len(shard.counts) - 1
        for i, c in enumerate(counts):
            shard.counts[min(i, last)] += c
        shard.total += total

    def snapshot(self) -> HistogramSnapshot:
        """Merge every shard into one immutable view."""
        counts = [0] * (len(self._bounds) + 1)
        total = 0.0
        with self._lock:
            for shard in self._shards:
                for i, c in enumerate(shard.counts):
                    counts[i] += c
                total += shard.total
        return HistogramSnapshot(self._bounds, counts, total)

    def exemplars(self) -> dict[int, Exemplar]:
        """Bucket index → last captured exemplar (index ``len(bounds)`` is
        the +Inf bucket)."""
        return dict(self._exemplars)

    def reset(self) -> None:
        with self._lock:
            for shard in self._shards:
                shard.counts = [0] * (len(self._bounds) + 1)
                shard.total = 0.0
        self._exemplars.clear()


Instrument = Counter | Gauge | Histogram


class MetricRegistry:
    """A named collection of instruments with get-or-create semantics.

    Each :class:`~repro.db.Database` owns one registry, so metrics from
    independent engine instances never bleed into each other; a module
    default (``obs.get_registry()``) serves component-less callers.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Instrument] = {}
        self._family_kind: dict[str, type] = {}

    def _get_or_create(
        self,
        name: str,
        labels: Mapping[str, str] | None,
        kind: type,
        factory: Callable[[], Any],
    ):
        key = name + label_suffix(_check_labels(labels))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if type(existing) is not kind:
                    raise TypeError(
                        f"metric {key!r} already registered as "
                        f"{type(existing).__name__}, not {kind.__name__}"
                    )
                return existing
            family = self._family_kind.get(name)
            if family is not None and family is not kind:
                raise TypeError(
                    f"metric family {name!r} already registered as "
                    f"{family.__name__}, not {kind.__name__}"
                )
            instrument = factory()
            self._metrics[key] = instrument
            self._family_kind[name] = kind
            return instrument

    def counter(
        self, name: str, help: str = "",
        labels: Mapping[str, str] | None = None,
    ) -> Counter:
        """Get or create the counter series ``name`` + ``labels``."""
        return self._get_or_create(
            name, labels, Counter, lambda: Counter(name, help, labels)
        )

    def gauge(
        self, name: str, help: str = "",
        callback: Callable[[], float] | None = None,
        labels: Mapping[str, str] | None = None,
    ) -> Gauge:
        """Get or create the gauge ``name`` (optionally callback-backed)."""
        gauge = self._get_or_create(
            name, labels, Gauge, lambda: Gauge(name, help, callback, labels)
        )
        if callback is not None and gauge.callback is None:
            gauge.callback = callback
        return gauge

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        labels: Mapping[str, str] | None = None,
    ) -> Histogram:
        """Get or create the histogram ``name`` with fixed ``buckets``."""
        return self._get_or_create(
            name, labels, Histogram, lambda: Histogram(name, help, buckets, labels)
        )

    def get(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> Instrument | None:
        """The instrument registered under ``name`` + ``labels``, or ``None``."""
        key = name + label_suffix(_check_labels(labels))
        with self._lock:
            return self._metrics.get(key)

    def unregister(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> bool:
        """Drop one series; ``True`` if it existed (idempotent).

        Components with a bounded lifetime (the obs HTTP server, the
        transactional service) register callback gauges that capture
        ``self``; unregistering on stop keeps repeated start/stop cycles
        from accumulating dead series — and dead object references —
        in a long-lived registry.
        """
        key = name + label_suffix(_check_labels(labels))
        with self._lock:
            removed = self._metrics.pop(key, None) is not None
            if removed and not any(
                m.name == name for m in self._metrics.values()
            ):
                self._family_kind.pop(name, None)
        return removed

    def unregister_family(self, name: str) -> int:
        """Drop every series of the family ``name``; returns the count
        removed (0 when none existed — idempotent)."""
        with self._lock:
            keys = [k for k, m in self._metrics.items() if m.name == name]
            for key in keys:
                del self._metrics[key]
            if keys:
                self._family_kind.pop(name, None)
        return len(keys)

    def series(self, name: str) -> list[Instrument]:
        """Every series of the family ``name`` (labeled and unlabeled)."""
        with self._lock:
            return sorted(
                (m for m in self._metrics.values() if m.name == name),
                key=lambda m: label_suffix(m.labels),
            )

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def __iter__(self) -> Iterator[Instrument]:
        """Instruments in stable order: by family name, then label set.

        Family-contiguous ordering is what lets the Prometheus exposition
        emit one HELP/TYPE block followed by every series of the family.
        """
        with self._lock:
            instruments = list(self._metrics.values())
        instruments.sort(key=lambda m: (m.name, label_suffix(m.labels)))
        return iter(instruments)

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def reset(self) -> None:
        """Zero every counter and histogram (gauges keep their callbacks)."""
        for instrument in self:
            if isinstance(instrument, (Counter, Histogram)):
                instrument.reset()
            elif instrument.callback is None:
                instrument._value = 0.0
