"""The flight recorder: a bounded, lock-light structured event journal.

Every engine layer emits typed :class:`Event` records at its interesting
edges — transaction begin/commit/abort/retry, WAL flush batches and fsyncs,
degraded-mode flips, GC passes, block state transitions with the heat
statistics that triggered them, crash-point fires, export requests.  The
journal answers the operator questions metrics cannot: *what happened,
in what order, around this incident?*

The same off-critical-path principle as the metric registry applies
(Section 4.2's ride-along idea): the hot-path ``record`` call appends to a
**thread-local buffer** (no lock), and buffers spill into the shared ring
only every ``local_buffer`` events.  The ring is bounded and drops oldest
under pressure; every eviction is counted in ``obs.events_dropped_total``
so a scrape can tell how much history the journal actually holds.  With
``obs.configure(enabled=False)`` the whole path is one attribute load and
a branch.

On top of the journal sit the forensic views:

- :meth:`Recorder.timeline` — the causal begin→(retries)→commit/abort
  chain of one transaction, with the trace spans that ran inside it,
- :meth:`Recorder.slow_transactions` — auto-captured timelines of every
  transaction that exceeded ``slow_txn_threshold`` seconds,
- :func:`render_chrome_trace` — spans + events as a Chrome/Perfetto
  ``chrome://tracing`` JSON document.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
import weakref
from collections import deque
from time import perf_counter
from typing import TYPE_CHECKING, Any, Iterator

from repro.obs.registry import STATE, Counter, MetricRegistry
from repro.obs.slo import CURRENT as _REQUEST

if TYPE_CHECKING:
    from repro.obs.trace import Span, Tracer

DEFAULT_CAPACITY = 8192
DEFAULT_LOCAL_BUFFER = 32
DEFAULT_SLOW_LOG_CAPACITY = 64

#: Every live recorder, for rare broadcast events (block reheats, crash
#: fires) emitted from layers that have no recorder handle of their own.
_LIVE: "weakref.WeakSet[Recorder]" = weakref.WeakSet()


class Event:
    """One journal entry: what happened, when, on which thread, to whom.

    ``ts`` is ``time.perf_counter()`` — the same monotonic clock trace
    spans use, so events and spans interleave on one axis.  ``txn_id`` and
    ``block_id`` are the correlation ids; ``attrs`` carries the kind's
    payload (batch sizes, heat statistics, error strings, ...).
    """

    __slots__ = (
        "seq", "ts", "kind", "thread", "txn_id", "block_id", "attrs",
        "process", "request_id",
    )

    def __init__(
        self,
        seq: int,
        ts: float,
        kind: str,
        thread: str,
        txn_id: int | None,
        block_id: int | None,
        attrs: dict[str, Any] | None,
        process: str | None = None,
        request_id: int | None = None,
    ) -> None:
        self.seq = seq
        self.ts = ts
        self.kind = kind
        self.thread = thread
        self.txn_id = txn_id
        self.block_id = block_id
        self.attrs = attrs
        #: Which process emitted this (``None`` = the coordinator); relayed
        #: worker events carry ``"worker<i>"`` so forensics stay attributable.
        self.process = process
        #: The service request being handled when this event fired (from
        #: the request lifecycle bound to the emitting thread), so
        #: ``/events?request=<id>`` filters the journal end-to-end.
        self.request_id = request_id

    @property
    def component(self) -> str:
        """The kind's first dotted segment (``txn``, ``wal``, ``block``...)."""
        return self.kind.partition(".")[0]

    def to_dict(self) -> dict[str, Any]:
        """A stable JSON-serializable view (used by ``/events``)."""
        out: dict[str, Any] = {
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
            "thread": self.thread,
        }
        if self.txn_id is not None:
            out["txn_id"] = self.txn_id
        if self.block_id is not None:
            out["block_id"] = self.block_id
        if self.process is not None:
            out["process"] = self.process
        if self.request_id is not None:
            out["request_id"] = self.request_id
        if self.attrs:
            out["attrs"] = self.attrs
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ids = ""
        if self.txn_id is not None:
            ids += f", txn={self.txn_id}"
        if self.block_id is not None:
            ids += f", block={self.block_id}"
        return f"Event({self.kind!r}{ids}, attrs={self.attrs})"


class _LocalBuffer:
    """Per-thread staging list, registered with its owning recorder.

    The owning thread's name is cached here so the hot path skips the
    ``threading.current_thread()`` lookup on every event."""

    __slots__ = ("events", "thread_name")

    def __init__(self) -> None:
        self.events: list[Event] = []
        self.thread_name = threading.current_thread().name


class Recorder:
    """A bounded ring of :class:`Event` with thread-local write buffering.

    The write path is lock-free: each thread owns a staging list and only
    takes the ring lock when the list reaches ``local_buffer`` entries.
    Readers merge the ring with every thread's staging list (buffers are
    cleared only by their owner, so reads never lose events) and sort by
    the global sequence number.  When a spill would overflow ``capacity``,
    the oldest ring entries are evicted and counted in
    ``obs.events_dropped_total``.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        registry: MetricRegistry | None = None,
        slow_txn_threshold: float | None = None,
        slow_log_capacity: int = DEFAULT_SLOW_LOG_CAPACITY,
        local_buffer: int = DEFAULT_LOCAL_BUFFER,
    ) -> None:
        if capacity < 1:
            raise ValueError("recorder capacity must be positive")
        if local_buffer < 1:
            raise ValueError("local buffer size must be positive")
        self.capacity = capacity
        self.local_buffer = local_buffer
        #: Latency (seconds) above which a finished transaction's timeline
        #: is auto-captured into the slow log; ``None`` disables capture.
        self.slow_txn_threshold = slow_txn_threshold
        self._ring: deque[Event] = deque()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._buffers: list[_LocalBuffer] = []
        self._seq = itertools.count(1)
        #: Wall-clock anchor: (time.time(), perf_counter()) at creation, so
        #: renderers can map monotonic timestamps to calendar time.
        self.wall_base = (time.time(), perf_counter())
        self._slow_log: deque[dict[str, Any]] = deque(maxlen=slow_log_capacity)
        #: Optional live :class:`~repro.obs.profiler.SamplingProfiler`; when
        #: set, slow-transaction captures get ``top_stack`` attribution.
        self.profiler = None
        self._registry = registry
        self._m_dropped: Counter | None = None
        if registry is not None:
            self._m_dropped = registry.counter(
                "obs.events_dropped_total",
                "journal events evicted from the ring under pressure",
            )
            registry.gauge(
                "obs.journal_events",
                "events currently held by the journal",
                callback=lambda: float(len(self)),
            )
            registry.gauge(
                "obs.slow_transactions",
                "timelines held by the slow-transaction log",
                callback=lambda: float(len(self._slow_log)),
            )
        _LIVE.add(self)

    # ------------------------------------------------------------------ #
    # write path                                                          #
    # ------------------------------------------------------------------ #

    def record(
        self,
        kind: str,
        txn_id: int | None = None,
        block_id: int | None = None,
        request_id: int | None = None,
        **attrs: Any,
    ) -> None:
        """Emit one event (hot path: a list append when enabled).

        When the emitting thread is inside an activated request lifecycle
        the event is tagged with that request's id automatically; an
        explicit ``request_id`` overrides (for completion bookkeeping that
        runs off the request thread).
        """
        if not STATE.enabled:
            return
        if request_id is None:
            lifecycle = getattr(_REQUEST, "lifecycle", None)
            if lifecycle is not None:
                request_id = lifecycle.request_id
        try:
            buf = self._local.buf
        except AttributeError:
            buf = _LocalBuffer()
            with self._lock:
                self._buffers.append(buf)
            self._local.buf = buf
        buf.events.append(
            Event(
                next(self._seq),
                perf_counter(),
                kind,
                buf.thread_name,
                txn_id,
                block_id,
                attrs or None,
                request_id=request_id,
            )
        )
        if len(buf.events) >= self.local_buffer:
            self._spill(buf)

    def _spill(self, buf: _LocalBuffer) -> None:
        """Move a thread's staged events into the ring (owner thread only)."""
        with self._lock:
            staged = buf.events
            if not staged:
                return
            ring = self._ring
            overflow = len(ring) + len(staged) - self.capacity
            if overflow > 0:
                evict = min(overflow, len(ring))
                for _ in range(evict):
                    ring.popleft()
                dropped = overflow  # staged beyond capacity also never land
                if len(staged) > self.capacity:
                    staged = staged[-self.capacity:]
                self._dropped_counter().inc(dropped)
            ring.extend(staged)
            buf.events.clear()

    def ingest(self, events: list[Event]) -> None:
        """Merge externally built events (the telemetry relay's worker
        batches) into the ring, re-sequencing them in arrival order.

        Timestamps must already be on this process's ``perf_counter`` axis
        (the relay clock-aligns before calling).  The same capacity and
        drop-accounting rules apply as for locally recorded events.
        """
        if not events:
            return
        with self._lock:
            for event in events:
                event.seq = next(self._seq)
            ring = self._ring
            overflow = len(ring) + len(events) - self.capacity
            if overflow > 0:
                evict = min(overflow, len(ring))
                for _ in range(evict):
                    ring.popleft()
                if len(events) > self.capacity:
                    events = events[-self.capacity:]
                self._dropped_counter().inc(overflow)
            ring.extend(events)

    def _dropped_counter(self) -> Counter:
        if self._m_dropped is None:
            if self._registry is None:
                from repro.obs import get_registry

                self._registry = get_registry()
            self._m_dropped = self._registry.counter(
                "obs.events_dropped_total",
                "journal events evicted from the ring under pressure",
            )
        return self._m_dropped

    def count_dropped(self, count: int) -> None:
        """Fold externally lost events into ``obs.events_dropped_total``.

        The telemetry relay calls this when a worker dies with staged
        events it never shipped: those events are journal losses exactly
        like ring evictions, and the drop counter must say so.
        """
        if count > 0:
            self._dropped_counter().inc(count)

    @property
    def events_dropped(self) -> int:
        """Total events evicted so far (0 until the first eviction)."""
        if self._m_dropped is None:
            return 0
        return int(self._m_dropped.value)

    # ------------------------------------------------------------------ #
    # read path                                                           #
    # ------------------------------------------------------------------ #

    def events(
        self,
        component: str | None = None,
        kind: str | None = None,
        txn_id: int | None = None,
        block_id: int | None = None,
        request_id: int | None = None,
        limit: int | None = None,
    ) -> list[Event]:
        """Merged, filtered journal contents, oldest first.

        ``limit`` keeps the *newest* matches.  Filters compose (AND).
        """
        with self._lock:
            merged = list(self._ring)
            for buf in self._buffers:
                merged.extend(list(buf.events))
        merged.sort(key=lambda e: e.seq)
        if component is not None:
            merged = [e for e in merged if e.component == component]
        if kind is not None:
            merged = [e for e in merged if e.kind == kind]
        if txn_id is not None:
            merged = [e for e in merged if e.txn_id == txn_id]
        if block_id is not None:
            merged = [e for e in merged if e.block_id == block_id]
        if request_id is not None:
            merged = [e for e in merged if e.request_id == request_id]
        if limit is not None and limit >= 0:
            merged = merged[-limit:]
        return merged

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring) + sum(len(b.events) for b in self._buffers)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events())

    def clear(self) -> None:
        """Drop every buffered event and slow-log entry (test isolation)."""
        with self._lock:
            self._ring.clear()
            for buf in self._buffers:
                buf.events.clear()
        self._slow_log.clear()

    # ------------------------------------------------------------------ #
    # transaction timelines                                               #
    # ------------------------------------------------------------------ #

    def timeline(self, txn_id: int, tracer: "Tracer | None" = None) -> dict[str, Any]:
        """The causal timeline of one transaction.

        Follows ``txn.retry`` links both directions, so the timeline of
        *any* attempt in a retry chain covers the whole
        begin→(retries)→commit/abort history.  Trace spans recorded on the
        same thread within an attempt's lifetime are attached under
        ``spans`` (best-effort: spans carry no txn ids, so attribution is
        by thread + time overlap).
        """
        all_events = self.events()
        chain = self._retry_chain(txn_id, all_events)
        events = [e for e in all_events if e.txn_id in chain]
        began = next((e for e in events if e.kind == "txn.begin"), None)
        ended = next(
            (e for e in reversed(events) if e.kind in ("txn.commit", "txn.abort")),
            None,
        )
        status = "unknown"
        if ended is not None:
            status = "committed" if ended.kind == "txn.commit" else "aborted"
        spans = self._attached_spans(events, began, ended, tracer)
        return {
            "txn_id": txn_id,
            "chain": chain,
            "retries": max(0, len(chain) - 1),
            "status": status,
            "complete": began is not None and ended is not None,
            "begin_ts": began.ts if began is not None else None,
            "end_ts": ended.ts if ended is not None else None,
            "duration_seconds": (
                ended.ts - began.ts if began is not None and ended is not None else None
            ),
            "events": [e.to_dict() for e in events],
            "spans": spans,
        }

    def _retry_chain(self, txn_id: int, all_events: list[Event]) -> list[int]:
        """Attempt ids linked by ``txn.retry`` events, oldest first."""
        prev_of: dict[int, int] = {}
        next_of: dict[int, int] = {}
        for event in all_events:
            if event.kind == "txn.retry" and event.attrs:
                prev = event.attrs.get("prev_txn_id")
                if prev is not None and event.txn_id is not None:
                    prev_of[event.txn_id] = prev
                    next_of[prev] = event.txn_id
        chain = [txn_id]
        seen = {txn_id}
        head = txn_id
        while head in prev_of and prev_of[head] not in seen:
            head = prev_of[head]
            chain.insert(0, head)
            seen.add(head)
        tail = txn_id
        while tail in next_of and next_of[tail] not in seen:
            tail = next_of[tail]
            chain.append(tail)
            seen.add(tail)
        return chain

    def _attached_spans(
        self,
        events: list[Event],
        began: Event | None,
        ended: Event | None,
        tracer: "Tracer | None",
    ) -> list[dict[str, Any]]:
        if began is None:
            return []
        if tracer is None:
            from repro.obs.trace import get_tracer

            tracer = get_tracer()
        end_ts = ended.ts if ended is not None else float("inf")
        threads = {e.thread for e in events}
        # Events that ran under a propagated trace (2PC, parallel
        # fragments) carry the trace id; spans sharing it are causally
        # part of this transaction even on other threads/processes.
        trace_ids = {
            e.attrs["trace_id"]
            for e in events
            if e.attrs and e.attrs.get("trace_id") is not None
        }
        out = []
        for span in tracer.spans():
            by_thread = span.thread in threads and span.start < end_ts and (
                span.start + span.duration > began.ts
            )
            by_trace = span.trace_id is not None and span.trace_id in trace_ids
            if by_thread or by_trace:
                entry = {
                    "name": span.name,
                    "start": span.start,
                    "duration_seconds": span.duration,
                    "self_seconds": span.self_seconds,
                    "thread": span.thread,
                }
                if span.trace_id is not None:
                    entry["trace_id"] = span.trace_id
                if span.process is not None:
                    entry["process"] = span.process
                out.append(entry)
        return out

    # ------------------------------------------------------------------ #
    # slow-transaction log                                                 #
    # ------------------------------------------------------------------ #

    def note_txn_complete(
        self, txn_id: int, duration: float, status: str
    ) -> None:
        """Called by the transaction manager after commit/abort; captures
        the timeline when the transaction exceeded the slow threshold."""
        threshold = self.slow_txn_threshold
        if threshold is None or duration < threshold:
            return
        entry = self.timeline(txn_id)
        entry["captured_status"] = status
        entry["captured_duration_seconds"] = duration
        profiler = self.profiler
        if profiler is not None and profiler.running:
            top = profiler.top_of_stack(threading.current_thread().name)
            if top is not None:
                entry["top_stack"] = top
        self._slow_log.append(entry)

    def slow_transactions(self) -> list[dict[str, Any]]:
        """Captured slow-transaction timelines, oldest first."""
        return list(self._slow_log)


# ---------------------------------------------------------------------- #
# process-default recorder + broadcast                                     #
# ---------------------------------------------------------------------- #

_DEFAULT_RECORDER: Recorder | None = None
_DEFAULT_LOCK = threading.Lock()


def get_recorder() -> Recorder:
    """The process-default recorder (components without a Database)."""
    global _DEFAULT_RECORDER
    if _DEFAULT_RECORDER is None:
        with _DEFAULT_LOCK:
            if _DEFAULT_RECORDER is None:
                _DEFAULT_RECORDER = Recorder()
    return _DEFAULT_RECORDER


def broadcast(
    kind: str, txn_id: int | None = None, block_id: int | None = None, **attrs: Any
) -> None:
    """Emit a rare event into *every* live recorder.

    Used by layers with no recorder handle (block reheats deep in storage,
    crash-point fires): the event must reach whichever database's journal
    is watching.  Never use this on a hot path — it walks a weak set.
    """
    if not STATE.enabled:
        return
    recorders = list(_LIVE) or [get_recorder()]
    for recorder in recorders:
        recorder.record(kind, txn_id=txn_id, block_id=block_id, **attrs)


# ---------------------------------------------------------------------- #
# Chrome-trace / Perfetto export                                           #
# ---------------------------------------------------------------------- #


def render_chrome_trace(
    recorder: Recorder | None = None,
    tracer: "Tracer | None" = None,
    indent: int | None = None,
    trace_id: int | None = None,
    requests: list | None = None,
) -> str:
    """Spans + journal events as a ``chrome://tracing`` JSON document.

    Spans become complete (``ph: "X"``) slices; journal events become
    thread-scoped instants (``ph: "i"``).  Timestamps are microseconds on
    the shared ``perf_counter`` axis, so the two interleave correctly —
    relayed worker records were clock-aligned onto that axis at merge time
    and carry a ``process`` tag, so each worker process renders as its own
    Perfetto process track (the coordinator is pid 1).  Span slices carry
    ``trace_id``/``span_id``/``parent_id`` in ``args``, so one distributed
    transaction is greppable across every track.  Load the output in
    ``chrome://tracing`` or https://ui.perfetto.dev.

    ``trace_id`` narrows the document to one trace: only spans of that
    trace and journal events tagged with it (via attrs or the request ids
    in ``requests``) are kept — the shape of the tail-sampled slow-request
    artifact.  ``requests`` adds a per-request **waterfall track**: each
    :class:`~repro.obs.slo.RequestLifecycle` renders its phase stamps as
    slices on a dedicated ``requests`` process track.
    """
    if recorder is None:
        recorder = get_recorder()
    if tracer is None:
        from repro.obs.trace import get_tracer

        tracer = get_tracer()
    events = recorder.events()
    spans = tracer.spans()
    requests = requests or []
    if trace_id is not None:
        spans = [s for s in spans if s.trace_id == trace_id]
        request_ids = {
            r.request_id for r in requests if r.trace_id == trace_id
        }
        events = [
            e
            for e in events
            if (e.attrs or {}).get("trace_id") == trace_id
            or (e.request_id is not None and e.request_id in request_ids)
        ]
        requests = [r for r in requests if r.trace_id == trace_id]
    base = min(
        [e.ts for e in events]
        + [s.start for s in spans]
        + [r.started for r in requests],
        default=recorder.wall_base[1],
    )
    pids: dict[str, int] = {"coordinator": 1}
    tids: dict[tuple[int, str], int] = {}

    def pid(process: str | None) -> int:
        key = process or "coordinator"
        if key not in pids:
            pids[key] = len(pids) + 1
        return pids[key]

    def tid(process: str | None, thread: str) -> int:
        key = (pid(process), thread)
        if key not in tids:
            tids[key] = len(tids) + 1
        return tids[key]

    trace_events: list[dict[str, Any]] = []
    for span in spans:
        args: dict[str, Any] = {"self_seconds": span.self_seconds}
        if span.trace_id is not None:
            args["trace_id"] = span.trace_id
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.attrs:
            args.update(span.attrs)
        trace_events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.name.partition(".")[0],
                "pid": pid(span.process),
                "tid": tid(span.process, span.thread),
                "ts": (span.start - base) * 1e6,
                "dur": span.duration * 1e6,
                "args": args,
            }
        )
    for event in events:
        args = dict(event.attrs or {})
        if event.txn_id is not None:
            args["txn_id"] = event.txn_id
        if event.block_id is not None:
            args["block_id"] = event.block_id
        trace_events.append(
            {
                "ph": "i",
                "name": event.kind,
                "cat": event.component,
                "pid": pid(event.process),
                "tid": tid(event.process, event.thread),
                "ts": (event.ts - base) * 1e6,
                "s": "t",
                "args": args,
            }
        )
    # Per-request waterfall tracks: every lifecycle gets its own thread
    # row under one "requests" process, phases as slices, the request as
    # an enclosing slice so the critical path reads left to right.
    for lifecycle in requests:
        row = tid("requests", f"request {lifecycle.request_id}")
        request_pid = pid("requests")
        end = lifecycle.ended if lifecycle.ended is not None else lifecycle.started
        args: dict[str, Any] = {
            "request_id": lifecycle.request_id,
            "op": lifecycle.op,
            "tenant": lifecycle.tenant,
            "outcome": lifecycle.outcome,
            "dominant_phase": lifecycle.dominant_phase(),
        }
        if lifecycle.trace_id is not None:
            args["trace_id"] = lifecycle.trace_id
        trace_events.append(
            {
                "ph": "X",
                "name": f"request:{lifecycle.op}",
                "cat": "request",
                "pid": request_pid,
                "tid": row,
                "ts": (lifecycle.started - base) * 1e6,
                "dur": max(0.0, end - lifecycle.started) * 1e6,
                "args": args,
            }
        )
        for phase_name, start, stop in lifecycle.phases:
            trace_events.append(
                {
                    "ph": "X",
                    "name": phase_name,
                    "cat": "request.phase",
                    "pid": request_pid,
                    "tid": row,
                    "ts": (start - base) * 1e6,
                    "dur": max(0.0, stop - start) * 1e6,
                    "args": {"request_id": lifecycle.request_id},
                }
            )
    for process, mapped_pid in pids.items():
        trace_events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": mapped_pid,
                "tid": 0,
                "args": {"name": process},
            }
        )
    for (mapped_pid, thread), mapped_tid in tids.items():
        trace_events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": mapped_pid,
                "tid": mapped_tid,
                "args": {"name": thread},
            }
        )
    document = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs.recorder",
            "wall_base_unix_seconds": recorder.wall_base[0],
        },
    }
    return json.dumps(document, indent=indent)
