"""repro.obs: the engine-wide observability layer.

Five pieces, one principle — statistics collection stays off the
transaction critical path (the paper's Section 4.2 ride-along idea,
generalized):

- :mod:`repro.obs.registry` — named :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` instruments that aggregate in thread-local shards and
  merge only on read,
- :mod:`repro.obs.trace` — nestable ``span("wal.group_commit")`` scopes
  feeding a bounded ring buffer with parent/child time attribution,
- :mod:`repro.obs.expo` — Prometheus text and stable-JSON exposition,
- :mod:`repro.obs.recorder` — the flight recorder: a bounded structured
  event journal with per-transaction causal timelines, a slow-transaction
  log, and Chrome-trace export,
- :mod:`repro.obs.server` — the stdlib HTTP monitoring server behind
  ``db.serve_obs(port)`` (``/metrics``, ``/healthz``, ``/varz``,
  ``/events``, ``/timeline/<txn_id>``, ``/pprof``),
- :mod:`repro.obs.relay` — the cross-process telemetry relay: worker
  processes run their own registry/tracer/staging buffer and ship deltas
  back on the result queues, with shared-memory staged-event accounting
  so drops stay exact even through SIGKILL,
- :mod:`repro.obs.profiler` — a stdlib wall-clock sampling profiler
  (``sys._current_frames()``) rendering collapsed flamegraph stacks.

Quick tour::

    from repro import Database, obs

    db = Database()
    ...                                  # run a workload
    print(obs.render_prometheus(db.obs)) # scrape-ready text
    print(obs.render_json(db.obs))       # stable JSON snapshot
    db.serve_obs(port=8642)              # live HTTP monitoring
    db.timeline(txn_id)                  # causal txn timeline
    obs.render_chrome_trace(db.recorder) # chrome://tracing document
    with obs.span("my.phase"):           # trace a scope
        ...
    obs.configure(enabled=False)         # near-no-op everywhere

Each ``Database`` owns its own :class:`MetricRegistry` (``db.obs``) and
:class:`Recorder` (``db.recorder``) so independent instances never mix
counts or events; ``obs.get_registry()`` / ``obs.get_recorder()`` are the
process defaults for component-less callers.  The naming convention is
``<component>.<event>[_seconds|_bytes|_total]``.
"""

from __future__ import annotations

from repro.obs import trace as trace
from repro.obs.expo import (
    render_json,
    render_openmetrics,
    render_prometheus,
    snapshot,
)
from repro.obs.profiler import SamplingProfiler, render_collapsed
from repro.obs.recorder import (
    Event,
    Recorder,
    get_recorder,
    render_chrome_trace,
)
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    STATE,
    Counter,
    Exemplar,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricRegistry,
)
from repro.obs.relay import TelemetryRelay, WorkerTelemetry
from repro.obs.slo import (
    RequestLifecycle,
    RequestLog,
    SloTracker,
    current_lifecycle,
    current_request_id,
    stamp_phase,
)
from repro.obs.trace import (
    Span,
    SpanSummary,
    TailSampler,
    TraceContext,
    Tracer,
    activate,
    current_context,
    get_tracer,
    span,
)

#: Process-default registry for callers without a Database in hand.
_DEFAULT_REGISTRY = MetricRegistry()


def get_registry() -> MetricRegistry:
    """The process-default metric registry."""
    return _DEFAULT_REGISTRY


def configure(
    enabled: bool | None = None,
    trace_capacity: int | None = None,
    slow_txn_threshold: float | None | str = "unset",
    exemplars: bool | None = None,
) -> None:
    """Adjust global observability behavior.

    ``enabled=False`` turns every instrument, span, and journal event into
    a near-no-op (one attribute load + branch on the hot path); ``True``
    re-enables.  ``trace_capacity`` resizes the default tracer's ring
    buffer.  ``slow_txn_threshold`` (seconds, or ``None`` to disable)
    sets the default recorder's slow-transaction capture threshold —
    databases own their recorders, so per-instance thresholds go through
    ``Database(slow_txn_threshold=...)`` instead.  ``exemplars=True``
    lets histograms remember the trace id behind the last sample per
    bucket (surfaced only by the OpenMetrics exposition).
    """
    if enabled is not None:
        STATE.enabled = enabled
    if trace_capacity is not None:
        trace.set_capacity(trace_capacity)
    if slow_txn_threshold != "unset":
        get_recorder().slow_txn_threshold = slow_txn_threshold
    if exemplars is not None:
        STATE.exemplars = exemplars


def is_enabled() -> bool:
    """Whether instruments are currently recording."""
    return STATE.enabled


__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Counter",
    "Event",
    "Exemplar",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricRegistry",
    "Recorder",
    "RequestLifecycle",
    "RequestLog",
    "SamplingProfiler",
    "SloTracker",
    "Span",
    "SpanSummary",
    "TailSampler",
    "TelemetryRelay",
    "TraceContext",
    "Tracer",
    "WorkerTelemetry",
    "activate",
    "configure",
    "current_context",
    "current_lifecycle",
    "current_request_id",
    "get_recorder",
    "get_registry",
    "get_tracer",
    "is_enabled",
    "render_chrome_trace",
    "render_collapsed",
    "render_json",
    "render_openmetrics",
    "render_prometheus",
    "snapshot",
    "span",
    "stamp_phase",
    "trace",
]
