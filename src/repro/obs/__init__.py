"""repro.obs: the engine-wide observability layer.

Three pieces, one principle — statistics collection stays off the
transaction critical path (the paper's Section 4.2 ride-along idea,
generalized):

- :mod:`repro.obs.registry` — named :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` instruments that aggregate in thread-local shards and
  merge only on read,
- :mod:`repro.obs.trace` — nestable ``span("wal.group_commit")`` scopes
  feeding a bounded ring buffer with parent/child time attribution,
- :mod:`repro.obs.expo` — Prometheus text and stable-JSON exposition.

Quick tour::

    from repro import Database, obs

    db = Database()
    ...                                  # run a workload
    print(obs.render_prometheus(db.obs)) # scrape-ready text
    print(obs.render_json(db.obs))       # stable JSON snapshot
    with obs.span("my.phase"):           # trace a scope
        ...
    obs.configure(enabled=False)         # near-no-op everywhere

Each ``Database`` owns its own :class:`MetricRegistry` (``db.obs``) so
independent instances never mix counts; ``obs.get_registry()`` is the
process-default registry for component-less callers.  The naming
convention is ``<component>.<event>[_seconds|_bytes|_total]``.
"""

from __future__ import annotations

from repro.obs import trace as trace
from repro.obs.expo import render_json, render_prometheus, snapshot
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    STATE,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricRegistry,
)
from repro.obs.trace import Span, SpanSummary, Tracer, get_tracer, span

#: Process-default registry for callers without a Database in hand.
_DEFAULT_REGISTRY = MetricRegistry()


def get_registry() -> MetricRegistry:
    """The process-default metric registry."""
    return _DEFAULT_REGISTRY


def configure(
    enabled: bool | None = None,
    trace_capacity: int | None = None,
) -> None:
    """Adjust global observability behavior.

    ``enabled=False`` turns every instrument and span into a near-no-op
    (one attribute load + branch on the hot path); ``True`` re-enables.
    ``trace_capacity`` resizes the default tracer's ring buffer.
    """
    if enabled is not None:
        STATE.enabled = enabled
    if trace_capacity is not None:
        trace.set_capacity(trace_capacity)


def is_enabled() -> bool:
    """Whether instruments are currently recording."""
    return STATE.enabled


__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricRegistry",
    "Span",
    "SpanSummary",
    "Tracer",
    "configure",
    "get_registry",
    "get_tracer",
    "is_enabled",
    "render_json",
    "render_prometheus",
    "snapshot",
    "span",
    "trace",
]
