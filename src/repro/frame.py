"""A minimal columnar DataFrame: the landing zone of Figure 1's pipeline.

The paper's motivation experiment ends with data "loaded into a Pandas
program".  This module is that destination, self-contained: a column-
oriented frame constructed zero-copy from an exported Arrow table, with
the handful of operations the analytics scripts in ``examples/`` need —
selection, filtering, sorting, summary statistics, CSV round-trip.

It is deliberately not Pandas; it demonstrates that once data is Arrow,
a useful dataframe is a thin veneer over the buffers.
"""

from __future__ import annotations

import io
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence

import numpy as np

from repro.errors import ReproError

if TYPE_CHECKING:
    from repro.arrowfmt.table import Table


class FrameError(ReproError):
    """A DataFrame operation was invalid."""


class DataFrame:
    """Named columns of equal length; numeric columns are numpy arrays."""

    def __init__(self, columns: dict[str, Any]) -> None:
        lengths = {len(v) for v in columns.values()}
        if len(lengths) > 1:
            raise FrameError(f"ragged columns: lengths {sorted(lengths)}")
        self._columns: dict[str, Any] = {}
        for name, values in columns.items():
            self._columns[name] = self._coerce(values)
        self.num_rows = lengths.pop() if lengths else 0

    @staticmethod
    def _coerce(values: Any) -> Any:
        if isinstance(values, np.ndarray):
            return values
        values = list(values)
        if values and all(
            isinstance(v, (int, float, np.integer, np.floating))
            and not isinstance(v, bool)
            for v in values
        ):
            return np.array(values)
        return values

    # ------------------------------------------------------------------ #
    # construction                                                        #
    # ------------------------------------------------------------------ #

    @classmethod
    def from_arrow(cls, table: "Table") -> "DataFrame":
        """Build from an exported Arrow table.

        Null-free fixed-width columns arrive as numpy: zero-copy for a
        single batch, one C-speed concatenate across batches.  Varlen (and
        nullable) columns materialize to Python lists — the same work any
        dataframe library does when leaving the Arrow representation.
        """
        from repro.arrowfmt.array import FixedSizeArray

        columns: dict[str, Any] = {}
        for index, field in enumerate(table.schema):
            arrays = [batch.columns[index] for batch in table.batches]
            all_numeric = arrays and all(
                isinstance(a, FixedSizeArray) and a.null_count == 0 for a in arrays
            )
            if all_numeric:
                if len(arrays) == 1:
                    columns[field.name] = arrays[0].to_numpy()
                else:
                    columns[field.name] = np.concatenate(
                        [a.to_numpy() for a in arrays]
                    )
            else:
                values: list[Any] = []
                for array in arrays:
                    values.extend(array.to_pylist())
                columns[field.name] = values
        return cls(columns)

    # ------------------------------------------------------------------ #
    # access                                                              #
    # ------------------------------------------------------------------ #

    @property
    def column_names(self) -> list[str]:
        """Column names in insertion order."""
        return list(self._columns)

    def __getitem__(self, name: str) -> Any:
        try:
            return self._columns[name]
        except KeyError:
            raise FrameError(f"no column {name!r}") from None

    def __len__(self) -> int:
        return self.num_rows

    def iter_rows(self) -> Iterator[dict[str, Any]]:
        """Yield rows as name-keyed dicts."""
        names = self.column_names
        vectors = [self._columns[n] for n in names]
        for i in range(self.num_rows):
            yield {
                n: (v[i].item() if isinstance(v, np.ndarray) else v[i])
                for n, v in zip(names, vectors)
            }

    # ------------------------------------------------------------------ #
    # transformation                                                      #
    # ------------------------------------------------------------------ #

    def select(self, names: Sequence[str]) -> "DataFrame":
        """Column projection (shares vectors)."""
        return DataFrame({n: self[n] for n in names})

    def head(self, n: int = 5) -> "DataFrame":
        """The first ``n`` rows."""
        return self._take(slice(0, n))

    def filter(self, name: str, predicate: Callable[[Any], Any]) -> "DataFrame":
        """Rows where ``predicate(column value)`` holds.

        numpy columns receive the whole vector (return a boolean array);
        list columns are filtered per value.
        """
        vector = self[name]
        if isinstance(vector, np.ndarray):
            mask = np.asarray(predicate(vector), dtype=bool)
            if mask.shape != vector.shape:
                raise FrameError("vectorized predicate must return one bool per row")
        else:
            mask = np.array(
                [v is not None and bool(predicate(v)) for v in vector], dtype=bool
            )
        return self._take(mask)

    def sort_values(self, name: str, descending: bool = False) -> "DataFrame":
        """Rows reordered by one column (nulls last)."""
        vector = self[name]
        if isinstance(vector, np.ndarray):
            order = np.argsort(vector, kind="stable")
        else:
            keyed = sorted(
                range(self.num_rows),
                key=lambda i: (vector[i] is None, vector[i] if vector[i] is not None else ""),
            )
            order = np.array(keyed, dtype=np.int64)
        if descending:
            order = order[::-1]
        return self._take(order)

    def _take(self, selector) -> "DataFrame":
        out: dict[str, Any] = {}
        for name, vector in self._columns.items():
            if isinstance(vector, np.ndarray):
                out[name] = vector[selector]
            elif isinstance(selector, slice):
                out[name] = vector[selector]
            else:
                indices = np.arange(self.num_rows)[selector] if (
                    isinstance(selector, np.ndarray) and selector.dtype == bool
                ) else selector
                out[name] = [vector[int(i)] for i in indices]
        return DataFrame(out)

    # ------------------------------------------------------------------ #
    # summarization                                                       #
    # ------------------------------------------------------------------ #

    def describe(self) -> dict[str, dict[str, float]]:
        """count / mean / min / max for each numeric column."""
        stats: dict[str, dict[str, float]] = {}
        for name, vector in self._columns.items():
            if isinstance(vector, np.ndarray) and vector.dtype.kind in "iuf":
                if len(vector):
                    stats[name] = {
                        "count": float(len(vector)),
                        "mean": float(vector.mean()),
                        "min": float(vector.min()),
                        "max": float(vector.max()),
                    }
                else:
                    stats[name] = {"count": 0.0, "mean": float("nan"),
                                   "min": float("nan"), "max": float("nan")}
        return stats

    # ------------------------------------------------------------------ #
    # interchange                                                         #
    # ------------------------------------------------------------------ #

    def to_csv(self, separator: str = ",") -> str:
        """Serialize with a header row; ``None`` becomes empty."""
        out = io.StringIO()
        names = self.column_names
        out.write(separator.join(names) + "\n")
        for row in self.iter_rows():
            out.write(
                separator.join(
                    "" if row[n] is None else str(row[n]) for n in names
                )
                + "\n"
            )
        return out.getvalue()

    def to_dict(self) -> dict[str, list]:
        """Plain lists per column."""
        return {
            n: (v.tolist() if isinstance(v, np.ndarray) else list(v))
            for n, v in self._columns.items()
        }

    def __repr__(self) -> str:
        return f"DataFrame(rows={self.num_rows}, columns={self.column_names})"
