"""Transactional index maintenance and write-amplification accounting.

A :class:`TableIndex` subscribes to its table's write notifications and
keeps the key → TupleSlot mapping current.  Entries are installed eagerly
(so a transaction sees its own writes through the index) with compensation
actions that undo them if the transaction aborts; MVCC visibility filtering
happens at lookup time, when candidate slots are read back through the Data
Table API under the reader's snapshot.

Every maintenance operation increments a counter.  Tuple movements during
compaction trigger a delete + insert per index — the constant-per-movement
write amplification that Figure 13 measures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Literal

from repro.errors import IndexError_
from repro.index.bplus_tree import BPlusTree
from repro.index.hash_index import HashIndex
from repro.storage.projection import ProjectedRow
from repro.storage.tuple_slot import TupleSlot

if TYPE_CHECKING:
    from repro.storage.data_table import DataTable
    from repro.txn.context import TransactionContext


class TableIndex:
    """One index over a table: key columns → tuple slots."""

    def __init__(
        self,
        name: str,
        table: "DataTable",
        key_columns: list[int],
        kind: Literal["bplus", "hash"] = "bplus",
    ) -> None:
        if not key_columns:
            raise IndexError_("an index needs at least one key column")
        num_columns = table.layout.num_columns
        for column_id in key_columns:
            if not 0 <= column_id < num_columns:
                raise IndexError_(f"key column {column_id} out of range")
        self.name = name
        self.table = table
        self.key_columns = list(key_columns)
        self.structure: BPlusTree | HashIndex = (
            BPlusTree() if kind == "bplus" else HashIndex()
        )
        self.kind = kind
        #: Total maintenance operations (inserts + deletes), including those
        #: caused by compaction's tuple movements.
        self.maintenance_ops = 0

    # ------------------------------------------------------------------ #
    # write-path hook                                                     #
    # ------------------------------------------------------------------ #

    def __call__(
        self,
        txn: "TransactionContext",
        slot: TupleSlot,
        kind: str,
        new_values: dict | None,
        old_values: dict | None,
    ) -> None:
        """The table's write-listener entry point."""
        if kind == "insert":
            key = self._key_from(new_values)
            self._add(txn, key, slot)
        elif kind == "delete":
            key = self._key_from(old_values)
            self._remove(txn, key, slot)
        elif kind == "update":
            if not any(c in new_values for c in self.key_columns):
                return
            new_key = self._key_after_update(txn, slot, new_values)
            old_key = tuple(
                old_values[c] if c in old_values else new_key[i]
                for i, c in enumerate(self.key_columns)
            )
            if old_key != new_key:
                self._remove(txn, old_key, slot)
                self._add(txn, new_key, slot)

    def _key_after_update(
        self, txn: "TransactionContext", slot: TupleSlot, delta: dict
    ) -> tuple:
        missing = [c for c in self.key_columns if c not in delta]
        current: dict[int, Any] = dict(delta)
        if missing:
            row = self.table.select(txn, slot, missing)
            if row is not None:
                current.update(row.to_dict())
        return self._key_from(current)

    def _key_from(self, values: dict | None) -> tuple:
        if values is None:
            raise IndexError_(f"index {self.name!r} received no key values")
        try:
            return tuple(values[c] for c in self.key_columns)
        except KeyError as exc:
            raise IndexError_(
                f"index {self.name!r} missing key column {exc.args[0]}"
            ) from None

    def _add(self, txn: "TransactionContext", key: tuple, slot: TupleSlot) -> None:
        self.structure.insert(key, slot)
        self.maintenance_ops += 1
        txn.abort_actions.append(lambda: self.structure.delete(key, slot))

    def _remove(self, txn: "TransactionContext", key: tuple, slot: TupleSlot) -> None:
        self.structure.delete(key, slot)
        self.maintenance_ops += 1
        txn.abort_actions.append(lambda: self.structure.insert(key, slot))

    # ------------------------------------------------------------------ #
    # read path                                                           #
    # ------------------------------------------------------------------ #

    def lookup(
        self,
        txn: "TransactionContext",
        key: tuple,
        column_ids: list[int] | None = None,
    ) -> list[tuple[TupleSlot, ProjectedRow]]:
        """Slots under ``key`` whose tuples are visible to ``txn``."""
        results = []
        for slot in self.structure.search(key):
            row = self.table.select(txn, slot, column_ids)
            if row is not None:
                results.append((slot, row))
        return results

    def range_scan(
        self,
        txn: "TransactionContext",
        low: tuple | None = None,
        high: tuple | None = None,
        column_ids: list[int] | None = None,
    ) -> Iterable[tuple[tuple, TupleSlot, ProjectedRow]]:
        """Ordered (key, slot, row) triples visible to ``txn``."""
        if not isinstance(self.structure, BPlusTree):
            raise IndexError_("range scans require a B+-tree index")
        for key, slot in self.structure.range_scan(low, high):
            row = self.table.select(txn, slot, column_ids)
            if row is not None:
                yield key, slot, row

    def __len__(self) -> int:
        return len(self.structure)


class IndexManager:
    """Creates and tracks the indexes of one database."""

    def __init__(self) -> None:
        self._indexes: dict[str, TableIndex] = {}

    def create_index(
        self,
        name: str,
        table: "DataTable",
        key_columns: list[int],
        kind: Literal["bplus", "hash"] = "bplus",
        backfill_txn: "TransactionContext | None" = None,
    ) -> TableIndex:
        """Create an index and subscribe it to the table's write path.

        ``backfill_txn`` (if given) is used to index tuples already in the
        table; new tables don't need one.
        """
        if name in self._indexes:
            raise IndexError_(f"index {name!r} already exists")
        index = TableIndex(name, table, key_columns, kind)
        table.add_write_listener(index, indexed_columns=set(key_columns))
        if backfill_txn is not None:
            for slot, row in table.scan(backfill_txn, list(key_columns)):
                index.structure.insert(index._key_from(row.to_dict()), slot)
        self._indexes[name] = index
        return index

    def get(self, name: str) -> TableIndex:
        """Look up an index by name."""
        try:
            return self._indexes[name]
        except KeyError:
            raise IndexError_(f"no index named {name!r}") from None

    def total_maintenance_ops(self) -> int:
        """Sum of maintenance operations across all indexes (Fig. 13)."""
        return sum(i.maintenance_ops for i in self._indexes.values())

    def __contains__(self, name: str) -> bool:
        return name in self._indexes

    def __len__(self) -> int:
        return len(self._indexes)
