"""A hash index for point lookups (no ordered scans)."""

from __future__ import annotations

import threading
from typing import Any


class HashIndex:
    """Key → set of values; the cheap option for equality-only access."""

    def __init__(self) -> None:
        self._buckets: dict[Any, list[Any]] = {}
        self._lock = threading.RLock()
        self._size = 0

    def insert(self, key: Any, value: Any) -> None:
        """Add ``value`` under ``key``."""
        with self._lock:
            self._buckets.setdefault(key, []).append(value)
            self._size += 1

    def delete(self, key: Any, value: Any) -> bool:
        """Remove one (key, value) pair; returns whether it was present."""
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is None:
                return False
            try:
                bucket.remove(value)
            except ValueError:
                return False
            if not bucket:
                del self._buckets[key]
            self._size -= 1
            return True

    def search(self, key: Any) -> list[Any]:
        """All values under ``key`` (empty list when absent)."""
        with self._lock:
            return list(self._buckets.get(key, ()))

    def __contains__(self, key: Any) -> bool:
        return key in self._buckets

    def __len__(self) -> int:
        return self._size

    def keys(self) -> list[Any]:
        """All keys, in no particular order."""
        return list(self._buckets)
