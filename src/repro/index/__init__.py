"""Indexes mapping logical keys to TupleSlots.

The paper's DB-X uses the OpenBw-Tree; this reproduction provides a B+-tree
with the same logical contract (ordered keys → tuple slots, range scans)
plus a hash index for point lookups.  :class:`IndexManager` wires index
maintenance into the transaction lifecycle and counts the index updates
that tuple movement causes — the write amplification of Figure 13.
"""

from repro.index.bplus_tree import BPlusTree
from repro.index.hash_index import HashIndex
from repro.index.manager import IndexManager, TableIndex

__all__ = ["BPlusTree", "HashIndex", "IndexManager", "TableIndex"]
