"""A B+-tree keyed by arbitrary comparable tuples.

Stands in for the OpenBw-Tree [52] the paper uses for all DB-X indexes.
Keys map to *sets* of values (non-unique indexes are first-class: TPC-C's
customer-by-name index needs them).  Leaves are chained for range scans.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Iterator

from repro.errors import IndexError_

DEFAULT_ORDER = 64


class _Node:
    __slots__ = ("keys", "is_leaf", "children", "values", "next_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.keys: list[Any] = []
        self.is_leaf = is_leaf
        self.children: list[_Node] = []  # interior only
        self.values: list[list[Any]] = []  # leaf only: parallel to keys
        self.next_leaf: _Node | None = None  # leaf chain for scans


class BPlusTree:
    """An order-``order`` B+-tree with duplicate-value support."""

    def __init__(self, order: int = DEFAULT_ORDER) -> None:
        if order < 3:
            raise IndexError_("B+-tree order must be at least 3")
        self.order = order
        self._root = _Node(is_leaf=True)
        self._size = 0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # mutation                                                            #
    # ------------------------------------------------------------------ #

    def insert(self, key: Any, value: Any) -> None:
        """Add ``value`` under ``key`` (duplicates under one key allowed)."""
        with self._lock:
            split = self._insert(self._root, key, value)
            if split is not None:
                sep, right = split
                new_root = _Node(is_leaf=False)
                new_root.keys = [sep]
                new_root.children = [self._root, right]
                self._root = new_root

    def delete(self, key: Any, value: Any) -> bool:
        """Remove one (key, value) pair; returns whether it was present.

        Underfull nodes are tolerated (no rebalancing on delete), matching
        the lazy-delete behaviour of most latch-free trees; lookups and
        scans remain correct.
        """
        with self._lock:
            node = self._find_leaf(key)
            i = bisect.bisect_left(node.keys, key)
            if i >= len(node.keys) or node.keys[i] != key:
                return False
            try:
                node.values[i].remove(value)
            except ValueError:
                return False
            if not node.values[i]:
                node.keys.pop(i)
                node.values.pop(i)
            self._size -= 1
            return True

    # ------------------------------------------------------------------ #
    # queries                                                             #
    # ------------------------------------------------------------------ #

    def search(self, key: Any) -> list[Any]:
        """All values stored under ``key`` (empty list when absent)."""
        with self._lock:
            node = self._find_leaf(key)
            i = bisect.bisect_left(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                return list(node.values[i])
            return []

    def range_scan(
        self,
        low: Any = None,
        high: Any = None,
        inclusive_high: bool = True,
    ) -> Iterator[tuple[Any, Any]]:
        """Yield (key, value) pairs with ``low <= key <= high`` in order."""
        with self._lock:
            node = self._find_leaf(low) if low is not None else self._leftmost()
            results = []
            while node is not None:
                for i, key in enumerate(node.keys):
                    if low is not None and key < low:
                        continue
                    if high is not None:
                        if key > high or (key == high and not inclusive_high):
                            return iter(results)
                    for value in node.values[i]:
                        results.append((key, value))
                node = node.next_leaf
            return iter(results)

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Any) -> bool:
        return bool(self.search(key))

    def keys(self) -> list[Any]:
        """All distinct keys in order."""
        out = []
        node = self._leftmost()
        while node is not None:
            out.extend(node.keys)
            node = node.next_leaf
        return out

    def depth(self) -> int:
        """Tree height (diagnostic)."""
        depth, node = 1, self._root
        while not node.is_leaf:
            depth += 1
            node = node.children[0]
        return depth

    # ------------------------------------------------------------------ #
    # internals                                                           #
    # ------------------------------------------------------------------ #

    def _find_leaf(self, key: Any) -> _Node:
        node = self._root
        while not node.is_leaf:
            i = bisect.bisect_right(node.keys, key)
            node = node.children[i]
        return node

    def _leftmost(self) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    def _insert(self, node: _Node, key: Any, value: Any):
        if node.is_leaf:
            i = bisect.bisect_left(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                node.values[i].append(value)
            else:
                node.keys.insert(i, key)
                node.values.insert(i, [value])
            self._size += 1
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        i = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[i], key, value)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(i, sep)
        node.children.insert(i + 1, right)
        if len(node.keys) > self.order:
            return self._split_interior(node)
        return None

    def _split_leaf(self, node: _Node):
        mid = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_interior(self, node: _Node):
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(is_leaf=False)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep, right
