"""The row-vs-column micro-benchmark (Figure 11).

The paper simulates a row-store *inside the same engine* by declaring one
single wide fixed-length column holding all of a tuple's attributes
contiguously, and compares raw insert/update throughput against the normal
columnar layout while scaling the number of 8-byte attributes from 1 to 64.
Index maintenance is excluded (its cost is identical for both models).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Literal

from repro.arrowfmt.datatypes import INT64, FixedBinaryType
from repro.storage.layout import ColumnSpec

if TYPE_CHECKING:
    from repro.db import Database

StorageModel = Literal["row", "column"]


@dataclass
class RowColResult:
    """One measured cell of Figure 11."""

    model: StorageModel
    operation: str
    attributes: int
    operations: int
    seconds: float

    @property
    def ops_per_sec(self) -> float:
        return self.operations / self.seconds if self.seconds else 0.0


def make_table(db: "Database", name: str, model: StorageModel, attributes: int,
               block_size: int = 1 << 16):
    """A table of ``attributes`` 8-byte ints in the chosen storage model."""
    if model == "row":
        columns = [ColumnSpec("row", FixedBinaryType(8 * attributes))]
    else:
        columns = [ColumnSpec(f"a{i}", INT64) for i in range(attributes)]
    return db.create_table(name, columns, block_size=block_size)


def run_inserts(
    db: "Database", model: StorageModel, attributes: int, operations: int,
    updated_attributes: int | None = None,
) -> RowColResult:
    """Insert ``operations`` tuples of ``attributes`` ints; time it."""
    info = make_table(db, f"ins_{model}_{attributes}", model, attributes)
    if model == "row":
        payload = {0: b"\x01" * (8 * attributes)}
    else:
        payload = {i: i for i in range(attributes)}
    txn = db.begin()
    began = time.perf_counter()
    table = info.table
    for _ in range(operations):
        table.insert(txn, payload)
    elapsed = time.perf_counter() - began
    db.commit(txn)
    return RowColResult(model, "insert", attributes, operations, elapsed)


def run_updates(
    db: "Database", model: StorageModel, attributes: int, operations: int,
    updated_attributes: int | None = None, base_rows: int = 2000,
) -> RowColResult:
    """Update ``updated_attributes`` attributes per op (default: all).

    A row-store must write the whole row back regardless of how many
    attributes change — that is the asymmetry Figure 11 shows.
    """
    updated = updated_attributes or attributes
    info = make_table(db, f"upd_{model}_{attributes}_{updated}", model, attributes)
    table = info.table
    if model == "row":
        payload = {0: b"\x01" * (8 * attributes)}
    else:
        payload = {i: i for i in range(attributes)}
    slots = []
    with db.transaction() as txn:
        for _ in range(base_rows):
            slots.append(table.insert(txn, payload))
    if model == "row":
        delta = {0: b"\x02" * (8 * attributes)}  # whole-row write-back
    else:
        delta = {i: -1 for i in range(updated)}
    txn = db.begin()
    began = time.perf_counter()
    for i in range(operations):
        table.update(txn, slots[i % base_rows], delta)
    elapsed = time.perf_counter() - began
    db.commit(txn)
    return RowColResult(model, "update", attributes, operations, elapsed)
