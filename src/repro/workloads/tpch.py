"""TPC-H LINEITEM generation for the Figure 1 motivation experiment.

Figure 1 measures the cost of moving a LINEITEM table from an OLTP system
into a dataframe three ways: an in-memory columnar hand-off, a CSV
export/import, and a row-oriented wire protocol ("ODBC").  This module
generates the 16-column LINEITEM at a configurable scale factor, loads it
into the engine, and provides the CSV path.
"""

from __future__ import annotations

import io
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.arrowfmt.datatypes import FLOAT64, INT64, UTF8
from repro.storage.layout import ColumnSpec

if TYPE_CHECKING:
    from repro.catalog.catalog import TableInfo
    from repro.db import Database

#: Rows per unit scale factor in the TPC-H specification.
ROWS_PER_SF = 6_000_000

LINEITEM_COLUMNS = [
    ColumnSpec("l_orderkey", INT64),
    ColumnSpec("l_partkey", INT64),
    ColumnSpec("l_suppkey", INT64),
    ColumnSpec("l_linenumber", INT64),
    ColumnSpec("l_quantity", FLOAT64),
    ColumnSpec("l_extendedprice", FLOAT64),
    ColumnSpec("l_discount", FLOAT64),
    ColumnSpec("l_tax", FLOAT64),
    ColumnSpec("l_returnflag", UTF8),
    ColumnSpec("l_linestatus", UTF8),
    ColumnSpec("l_shipdate", INT64),
    ColumnSpec("l_commitdate", INT64),
    ColumnSpec("l_receiptdate", INT64),
    ColumnSpec("l_shipinstruct", UTF8),
    ColumnSpec("l_shipmode", UTF8),
    ColumnSpec("l_comment", UTF8),
]

_SHIP_INSTRUCT = ("DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN")
_SHIP_MODE = ("REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB")
_COMMENT_WORDS = (
    "carefully", "quickly", "furiously", "slyly", "blithely", "deposits",
    "packages", "accounts", "requests", "foxes", "pending", "ironic",
)


@dataclass(frozen=True)
class TpchConfig:
    """LINEITEM scale configuration."""

    scale_factor: float = 0.001
    seed: int = 0
    block_size: int = 1 << 18

    @property
    def row_count(self) -> int:
        return max(1, int(ROWS_PER_SF * self.scale_factor))


class LineitemGenerator:
    """Deterministic LINEITEM rows at a given scale factor."""

    def __init__(self, config: TpchConfig) -> None:
        self.config = config

    def rows(self) -> Iterator[tuple]:
        """Yield rows in spec column order."""
        rng = random.Random(self.config.seed)
        orderkey = 0
        produced = 0
        while produced < self.config.row_count:
            orderkey += rng.randint(1, 4)
            for linenumber in range(1, rng.randint(1, 7) + 1):
                if produced >= self.config.row_count:
                    return
                quantity = float(rng.randint(1, 50))
                price = round(quantity * rng.uniform(900.0, 105000.0) / 50, 2)
                ship = rng.randint(8000, 10_000)
                yield (
                    orderkey,
                    rng.randint(1, 200_000),
                    rng.randint(1, 10_000),
                    linenumber,
                    quantity,
                    price,
                    round(rng.uniform(0.0, 0.10), 2),
                    round(rng.uniform(0.0, 0.08), 2),
                    rng.choice("RAN"),
                    rng.choice("OF"),
                    ship,
                    ship + rng.randint(-30, 30),
                    ship + rng.randint(1, 30),
                    rng.choice(_SHIP_INSTRUCT),
                    rng.choice(_SHIP_MODE),
                    " ".join(rng.choice(_COMMENT_WORDS) for _ in range(rng.randint(3, 8))),
                )
                produced += 1

    def load_into(self, db: "Database", name: str = "lineitem") -> "TableInfo":
        """Create and populate the engine-side LINEITEM table."""
        info = db.create_table(name, LINEITEM_COLUMNS, block_size=self.config.block_size)
        with db.transaction() as txn:
            for row in self.rows():
                info.table.insert(txn, dict(enumerate(row)))
        db.quiesce()
        return info

    # ------------------------------------------------------------------ #
    # the CSV path of Figure 1                                            #
    # ------------------------------------------------------------------ #

    @staticmethod
    def to_csv(rows: Iterator[tuple]) -> bytes:
        """Serialize rows as CSV (PostgreSQL COPY's text path)."""
        out = io.StringIO()
        for row in rows:
            out.write("|".join("" if v is None else str(v) for v in row))
            out.write("\n")
        return out.getvalue().encode("utf-8")

    @staticmethod
    def from_csv(raw: bytes) -> list[tuple]:
        """Parse CSV back into typed rows (the dataframe-load step)."""
        typed_rows = []
        types = [spec.dtype for spec in LINEITEM_COLUMNS]
        for line in raw.decode("utf-8").splitlines():
            fields = line.split("|")
            row = []
            for value, dtype in zip(fields, types):
                if dtype is INT64:
                    row.append(int(value))
                elif dtype is FLOAT64:
                    row.append(float(value))
                else:
                    row.append(value)
            typed_rows.append(tuple(row))
        return typed_rows
