"""Synthetic tables for the transformation micro-benchmarks (Section 6.2).

The paper's setup: one table of two columns — an 8-byte fixed-length
integer and a variable-length column with values of 12–24 bytes — filled
block by block, with "empty tuples inserted at random to simulate deletion"
at a configurable rate.  Variants with all-fixed or all-varlen columns
reproduce Figures 12c/12d.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Literal

from repro.arrowfmt.datatypes import INT64, UTF8
from repro.storage.layout import ColumnSpec

if TYPE_CHECKING:
    from repro.catalog.catalog import TableInfo
    from repro.db import Database

ColumnMix = Literal["mixed", "fixed", "varlen"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Shape of the synthetic table."""

    n_blocks: int = 4
    percent_empty: float = 10.0
    column_mix: ColumnMix = "mixed"
    varlen_low: int = 12
    varlen_high: int = 24
    block_size: int = 1 << 16
    seed: int = 0

    def columns(self) -> list[ColumnSpec]:
        """Column specs for the chosen mix."""
        if self.column_mix == "mixed":
            return [ColumnSpec("fixed", INT64), ColumnSpec("var", UTF8)]
        if self.column_mix == "fixed":
            return [ColumnSpec("fixed_a", INT64), ColumnSpec("fixed_b", INT64)]
        return [ColumnSpec("var_a", UTF8), ColumnSpec("var_b", UTF8)]


_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789"


def _varlen_value(rng: random.Random, low: int, high: int) -> str:
    return "".join(rng.choice(_ALPHABET) for _ in range(rng.randint(low, high)))


def build_synthetic_table(
    db: "Database", name: str, config: SyntheticConfig
) -> "TableInfo":
    """Create and populate the table; deleted slots hit ``percent_empty``.

    The deletion pattern matches the paper's: tuples are loaded densely,
    then a random ``percent_empty`` fraction is deleted (and the delete
    chains GC'd), leaving the gaps compaction has to fill.
    """
    rng = random.Random(config.seed)
    info = db.create_table(name, config.columns(), block_size=config.block_size)
    slots_per_block = info.table.layout.num_slots
    total = slots_per_block * config.n_blocks
    with db.transaction() as txn:
        for i in range(total):
            values: dict[int, object] = {}
            for column_id, spec in enumerate(config.columns()):
                if spec.is_varlen:
                    values[column_id] = _varlen_value(
                        rng, config.varlen_low, config.varlen_high
                    )
                else:
                    values[column_id] = i
            info.table.insert(txn, values)
    if config.percent_empty > 0:
        victims = rng.sample(range(total), int(total * config.percent_empty / 100.0))
        with db.transaction() as txn:
            from repro.storage.tuple_slot import TupleSlot

            for index in victims:
                block = info.table.blocks[index // slots_per_block]
                info.table.delete(
                    txn, TupleSlot(block.block_id, index % slots_per_block)
                )
    db.quiesce()
    return info
