"""Workloads: TPC-C, TPC-H LINEITEM, and the paper's micro-benchmarks."""

from repro.workloads.synthetic import SyntheticConfig, build_synthetic_table
from repro.workloads.tpch import LineitemGenerator, TpchConfig

__all__ = [
    "LineitemGenerator",
    "SyntheticConfig",
    "TpchConfig",
    "build_synthetic_table",
]
