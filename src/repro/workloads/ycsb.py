"""A YCSB-style key-value workload with zipfian skew.

Section 4.1's premise — "typical OLTP workloads modify only a small portion
of a database at any given time" — is exactly what zipfian access patterns
produce.  This workload drives the hot/cold split directly: high skew keeps
writes inside few blocks and lets the rest of the table freeze; uniform
access keeps reheating everything.

The zipfian generator is the standard YCSB one (Gray et al.'s algorithm),
deterministic under a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.arrowfmt.datatypes import INT64, UTF8
from repro.errors import TransactionAborted, WorkloadError
from repro.storage.layout import ColumnSpec

if TYPE_CHECKING:
    from repro.catalog.catalog import TableInfo
    from repro.db import Database


class ZipfianGenerator:
    """Draws integers in ``[0, n)`` with zipfian frequency (theta ≈ skew)."""

    def __init__(self, n: int, theta: float = 0.99, seed: int | None = None) -> None:
        if n < 1:
            raise WorkloadError("zipfian domain must be non-empty")
        if not 0.0 <= theta < 1.0:
            raise WorkloadError("theta must be in [0, 1)")
        self.n = n
        self.theta = theta
        self.rng = random.Random(seed)
        self.zetan = self._zeta(n, theta)
        self.zeta2 = self._zeta(2, theta)
        self.alpha = 1.0 / (1.0 - theta) if theta else 1.0
        self.eta = (
            (1.0 - (2.0 / n) ** (1.0 - theta)) / (1.0 - self.zeta2 / self.zetan)
            if theta
            else 0.0
        )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next(self) -> int:
        """Next sample; item 0 is the most popular."""
        if self.theta == 0.0:
            return self.rng.randrange(self.n)
        u = self.rng.random()
        uz = u * self.zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * (self.eta * u - self.eta + 1.0) ** self.alpha)


@dataclass(frozen=True)
class YcsbConfig:
    """Workload shape: record count, field size, operation mix, skew."""

    records: int = 1000
    field_length: int = 32
    read_proportion: float = 0.5
    update_proportion: float = 0.45
    insert_proportion: float = 0.05
    zipf_theta: float = 0.9
    block_size: int = 1 << 14

    def __post_init__(self) -> None:
        total = self.read_proportion + self.update_proportion + self.insert_proportion
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(f"operation mix sums to {total}, expected 1.0")


YCSB_COLUMNS = [ColumnSpec("key", INT64), ColumnSpec("field0", UTF8)]


class YcsbDriver:
    """Loads and drives the usertable."""

    def __init__(self, db: "Database", config: YcsbConfig, seed: int = 0) -> None:
        self.db = db
        self.config = config
        self.rng = random.Random(seed)
        self.zipf = ZipfianGenerator(config.records, config.zipf_theta, seed=seed)
        self.info: "TableInfo | None" = None
        self._slots: list = []
        self._next_key = config.records
        self.reads = self.updates = self.inserts = self.aborts = 0

    def setup(self, watch_cold: bool = True) -> "TableInfo":
        """Create and load the usertable."""
        self.info = self.db.create_table(
            "usertable", YCSB_COLUMNS,
            block_size=self.config.block_size, watch_cold=watch_cold,
        )
        with self.db.transaction() as txn:
            for key in range(self.config.records):
                self._slots.append(
                    self.info.table.insert(txn, {0: key, 1: self._value(key)})
                )
        self.db.quiesce()
        return self.info

    def _value(self, key: int) -> str:
        return f"v{key}-" + "x" * self.config.field_length

    def run(self, operations: int) -> None:
        """Execute ``operations`` one-op transactions per the mix."""
        if self.info is None:
            raise WorkloadError("setup() must run first")
        config = self.config
        for _ in range(operations):
            pick = self.rng.random()
            txn = self.db.begin()
            try:
                if pick < config.read_proportion:
                    slot = self._slots[self.zipf.next() % len(self._slots)]
                    self.info.table.select(txn, slot, [1])
                    self.reads += 1
                elif pick < config.read_proportion + config.update_proportion:
                    slot = self._slots[self.zipf.next() % len(self._slots)]
                    if not self.info.table.update(
                        txn, slot, {1: self._value(self.rng.randrange(1 << 30))}
                    ):
                        self.db.abort(txn)
                        self.aborts += 1
                        continue
                    self.updates += 1
                else:
                    key = self._next_key
                    self._next_key += 1
                    self._slots.append(
                        self.info.table.insert(txn, {0: key, 1: self._value(key)})
                    )
                    self.inserts += 1
                self.db.commit(txn)
            except TransactionAborted:
                self.aborts += 1

    def frozen_fraction(self) -> float:
        """Fraction of the usertable's blocks frozen right now."""
        from repro.storage.constants import BlockState

        states = self.info.table.block_states()
        total = sum(states.values())
        return states[BlockState.FROZEN] / total if total else 0.0
