"""The TPC-C driver: mixed workload execution and throughput measurement.

Runs the standard transaction mix (clause 5.2.4 minimums: 45% NewOrder,
43% Payment, 4% each OrderStatus / Delivery / StockLevel) open-loop, with
optional worker threads (one warehouse per worker, as in Section 6.1) and
the maintenance pipeline (GC + transformation) interleaved the way the
paper dedicates background threads to it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.storage.constants import BlockState
from repro.workloads.tpcc.loader import TpccLoader
from repro.workloads.tpcc.schema import COLD_TABLES, TpccConfig, create_tpcc_tables
from repro.workloads.tpcc.transactions import TpccTransactions

if TYPE_CHECKING:
    from repro.db import Database

#: The standard mix as cumulative thresholds.
MIX = (
    ("new_order", 0.45),
    ("payment", 0.88),
    ("order_status", 0.92),
    ("delivery", 0.96),
    ("stock_level", 1.00),
)


@dataclass
class TpccRun:
    """Results of one measured run."""

    seconds: float
    committed: int
    aborted: int
    per_profile: dict[str, int]
    block_states: dict[str, dict[str, int]]
    #: Conflict-abort resubmissions during the run (``workload.txn_retries_total``).
    retried: int = 0

    @property
    def throughput(self) -> float:
        """Committed transactions per second."""
        return self.committed / self.seconds if self.seconds else 0.0

    def frozen_fraction(self, table: str) -> float:
        """Fraction of a table's blocks frozen at the end of the run."""
        states = self.block_states[table]
        total = sum(states.values())
        return states.get("FROZEN", 0) / total if total else 0.0


class TpccDriver:
    """Loads and drives a TPC-C database."""

    def __init__(
        self,
        db: "Database",
        config: TpccConfig | None = None,
        seed: int | None = 0,
    ) -> None:
        self.db = db
        self.config = config or TpccConfig.small()
        self.seed = seed

    def setup(self) -> None:
        """Create tables/indexes and load the initial database."""
        create_tpcc_tables(self.db, self.config)
        TpccLoader(self.db, self.config, seed=self.seed).load()
        self.db.quiesce()

    def run(
        self,
        transactions_per_worker: int,
        workers: int = 1,
        maintenance_every: int = 0,
    ) -> TpccRun:
        """Execute the mix; returns the measured run.

        ``maintenance_every`` > 0 interleaves one transformation pipeline
        pass after that many transactions (per worker 0) — the sequential
        stand-in for the paper's dedicated transformation thread.
        """
        executors = [
            TpccTransactions(self.db, self.config, seed=(self.seed or 0) + 1000 + i)
            for i in range(workers)
        ]
        retries_before = int(
            self.db.obs.counter("workload.txn_retries_total").value
        )
        began = time.perf_counter()
        if workers == 1:
            self._worker_loop(executors[0], transactions_per_worker, maintenance_every, 1)
        else:
            threads = [
                threading.Thread(
                    target=self._worker_loop,
                    args=(
                        executors[i],
                        transactions_per_worker,
                        maintenance_every if i == 0 else 0,
                        (i % self.config.warehouses) + 1,
                    ),
                )
                for i in range(workers)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        elapsed = time.perf_counter() - began
        committed: dict[str, int] = {}
        aborted = 0
        for executor in executors:
            for profile, count in executor.counters.committed.items():
                committed[profile] = committed.get(profile, 0) + count
            aborted += sum(executor.counters.aborted.values())
        return TpccRun(
            seconds=elapsed,
            committed=sum(committed.values()),
            aborted=aborted,
            per_profile=committed,
            block_states=self.block_state_report(),
            retried=int(
                self.db.obs.counter("workload.txn_retries_total").value
            )
            - retries_before,
        )

    def _worker_loop(
        self,
        executor: TpccTransactions,
        count: int,
        maintenance_every: int,
        home_warehouse: int,
    ) -> None:
        for i in range(count):
            pick = executor.rand.random()
            for profile, threshold in MIX:
                if pick <= threshold:
                    getattr(executor, profile)(home_warehouse)
                    break
            if maintenance_every and (i + 1) % maintenance_every == 0:
                self.db.run_maintenance()

    def block_state_report(self) -> dict[str, dict[str, int]]:
        """Block-state histogram per cold table (Figure 10b's metric)."""
        report = {}
        for name in COLD_TABLES:
            states = self.db.catalog.table(name).block_states()
            report[name] = {state.name: count for state, count in states.items()}
        return report

    def cold_coverage(self) -> float:
        """Fraction of cold-table blocks in COOLING or FROZEN state."""
        total = advanced = 0
        for name in COLD_TABLES:
            for state, count in self.db.catalog.table(name).block_states().items():
                total += count
                if state in (BlockState.COOLING, BlockState.FROZEN):
                    advanced += count
        return advanced / total if total else 0.0
