"""TPC-C table definitions and scaling configuration.

Table and column names follow the TPC-C specification; DECIMAL columns map
to float64, timestamps to int64 (epoch micros), and CHAR/VARCHAR to UTF-8
varlen columns — the same mapping Figure 2 of the paper sketches for ITEM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.arrowfmt.datatypes import FLOAT64, INT64, UTF8
from repro.storage.constants import BLOCK_SIZE
from repro.storage.layout import ColumnSpec

if TYPE_CHECKING:
    from repro.db import Database


@dataclass(frozen=True)
class TpccConfig:
    """Cardinality knobs.

    Defaults follow the specification; benchmarks shrink them so a pure-
    Python engine loads in seconds.  Ratios between tables are preserved
    either way, which is what the workload's access skew depends on.
    """

    warehouses: int = 1
    districts_per_warehouse: int = 10
    customers_per_district: int = 3000
    items: int = 100_000
    initial_orders_per_district: int = 3000
    stock_per_warehouse: int = 100_000
    #: Fraction of NewOrder transactions aborted by an unused item id (the
    #: spec mandates 1%).
    new_order_rollback_rate: float = 0.01
    #: Fraction of Payment transactions paying a *remote* customer (the
    #: spec's clause 2.5.1.2 mandates 15%).  Only drawn when there is more
    #: than one warehouse, so single-warehouse RNG streams are unchanged.
    payment_remote_rate: float = 0.15
    block_size: int = BLOCK_SIZE

    @staticmethod
    def small(warehouses: int = 1) -> "TpccConfig":
        """A laptop-scale configuration preserving the spec's ratios."""
        return TpccConfig(
            warehouses=warehouses,
            districts_per_warehouse=4,
            customers_per_district=60,
            items=500,
            initial_orders_per_district=60,
            stock_per_warehouse=500,
            block_size=1 << 16,
        )


#: Column definitions per table, in spec order (trimmed of padding columns
#: that carry no workload semantics is NOT done — all spec columns exist).
TPCC_TABLES: dict[str, list[ColumnSpec]] = {
    "warehouse": [
        ColumnSpec("w_id", INT64),
        ColumnSpec("w_name", UTF8),
        ColumnSpec("w_street_1", UTF8),
        ColumnSpec("w_street_2", UTF8),
        ColumnSpec("w_city", UTF8),
        ColumnSpec("w_state", UTF8),
        ColumnSpec("w_zip", UTF8),
        ColumnSpec("w_tax", FLOAT64),
        ColumnSpec("w_ytd", FLOAT64),
    ],
    "district": [
        ColumnSpec("d_id", INT64),
        ColumnSpec("d_w_id", INT64),
        ColumnSpec("d_name", UTF8),
        ColumnSpec("d_street_1", UTF8),
        ColumnSpec("d_street_2", UTF8),
        ColumnSpec("d_city", UTF8),
        ColumnSpec("d_state", UTF8),
        ColumnSpec("d_zip", UTF8),
        ColumnSpec("d_tax", FLOAT64),
        ColumnSpec("d_ytd", FLOAT64),
        ColumnSpec("d_next_o_id", INT64),
    ],
    "customer": [
        ColumnSpec("c_id", INT64),
        ColumnSpec("c_d_id", INT64),
        ColumnSpec("c_w_id", INT64),
        ColumnSpec("c_first", UTF8),
        ColumnSpec("c_middle", UTF8),
        ColumnSpec("c_last", UTF8),
        ColumnSpec("c_street_1", UTF8),
        ColumnSpec("c_street_2", UTF8),
        ColumnSpec("c_city", UTF8),
        ColumnSpec("c_state", UTF8),
        ColumnSpec("c_zip", UTF8),
        ColumnSpec("c_phone", UTF8),
        ColumnSpec("c_since", INT64),
        ColumnSpec("c_credit", UTF8),
        ColumnSpec("c_credit_lim", FLOAT64),
        ColumnSpec("c_discount", FLOAT64),
        ColumnSpec("c_balance", FLOAT64),
        ColumnSpec("c_ytd_payment", FLOAT64),
        ColumnSpec("c_payment_cnt", INT64),
        ColumnSpec("c_delivery_cnt", INT64),
        ColumnSpec("c_data", UTF8),
    ],
    "history": [
        ColumnSpec("h_c_id", INT64),
        ColumnSpec("h_c_d_id", INT64),
        ColumnSpec("h_c_w_id", INT64),
        ColumnSpec("h_d_id", INT64),
        ColumnSpec("h_w_id", INT64),
        ColumnSpec("h_date", INT64),
        ColumnSpec("h_amount", FLOAT64),
        ColumnSpec("h_data", UTF8),
    ],
    "new_order": [
        ColumnSpec("no_o_id", INT64),
        ColumnSpec("no_d_id", INT64),
        ColumnSpec("no_w_id", INT64),
    ],
    "oorder": [
        ColumnSpec("o_id", INT64),
        ColumnSpec("o_d_id", INT64),
        ColumnSpec("o_w_id", INT64),
        ColumnSpec("o_c_id", INT64),
        ColumnSpec("o_entry_d", INT64),
        ColumnSpec("o_carrier_id", INT64),
        ColumnSpec("o_ol_cnt", INT64),
        ColumnSpec("o_all_local", INT64),
    ],
    "order_line": [
        ColumnSpec("ol_o_id", INT64),
        ColumnSpec("ol_d_id", INT64),
        ColumnSpec("ol_w_id", INT64),
        ColumnSpec("ol_number", INT64),
        ColumnSpec("ol_i_id", INT64),
        ColumnSpec("ol_supply_w_id", INT64),
        ColumnSpec("ol_delivery_d", INT64),
        ColumnSpec("ol_quantity", INT64),
        ColumnSpec("ol_amount", FLOAT64),
        ColumnSpec("ol_dist_info", UTF8),
    ],
    "item": [
        ColumnSpec("i_id", INT64),
        ColumnSpec("i_im_id", INT64),
        ColumnSpec("i_name", UTF8),
        ColumnSpec("i_price", FLOAT64),
        ColumnSpec("i_data", UTF8),
    ],
    "stock": [
        ColumnSpec("s_i_id", INT64),
        ColumnSpec("s_w_id", INT64),
        ColumnSpec("s_quantity", INT64),
        ColumnSpec("s_dist_01", UTF8),
        ColumnSpec("s_dist_02", UTF8),
        ColumnSpec("s_dist_03", UTF8),
        ColumnSpec("s_dist_04", UTF8),
        ColumnSpec("s_dist_05", UTF8),
        ColumnSpec("s_dist_06", UTF8),
        ColumnSpec("s_dist_07", UTF8),
        ColumnSpec("s_dist_08", UTF8),
        ColumnSpec("s_dist_09", UTF8),
        ColumnSpec("s_dist_10", UTF8),
        ColumnSpec("s_ytd", INT64),
        ColumnSpec("s_order_cnt", INT64),
        ColumnSpec("s_remote_cnt", INT64),
        ColumnSpec("s_data", UTF8),
    ],
}

#: Tables that generate cold data, the ones the paper's transformation
#: targets in Section 6.1.
COLD_TABLES = ("oorder", "order_line", "history", "item")

#: Shard-column map for running TPC-C on a :class:`repro.cluster.ShardedDatabase`:
#: every table shards by its home-warehouse column, so a single-warehouse
#: transaction is single-shard and the consistency conditions (clause
#: 3.3.2, all scoped per warehouse/district) hold shard-locally.  ``item``
#: is deliberately absent — it is read-everywhere/written-never after
#: load, the canonical replicated table.
TPCC_SHARD_KEYS: dict[str, str] = {
    "warehouse": "w_id",
    "district": "d_w_id",
    "customer": "c_w_id",
    "history": "h_w_id",
    "new_order": "no_w_id",
    "oorder": "o_w_id",
    "order_line": "ol_w_id",
    "stock": "s_w_id",
}


def create_tpcc_tables(db: "Database", config: TpccConfig) -> None:
    """Create all nine tables and the indexes the transactions need."""
    for name, columns in TPCC_TABLES.items():
        db.create_table(
            name, columns, block_size=config.block_size,
            watch_cold=name in COLD_TABLES,
        )
    db.create_index("warehouse", "pk", ["w_id"], kind="hash")
    db.create_index("district", "pk", ["d_w_id", "d_id"], kind="hash")
    db.create_index("customer", "pk", ["c_w_id", "c_d_id", "c_id"], kind="hash")
    db.create_index("customer", "by_name", ["c_w_id", "c_d_id", "c_last", "c_first"])
    db.create_index("new_order", "pk", ["no_w_id", "no_d_id", "no_o_id"])
    db.create_index("oorder", "pk", ["o_w_id", "o_d_id", "o_id"], kind="hash")
    db.create_index("oorder", "by_customer", ["o_w_id", "o_d_id", "o_c_id", "o_id"])
    db.create_index("order_line", "pk", ["ol_w_id", "ol_d_id", "ol_o_id", "ol_number"])
    db.create_index("item", "pk", ["i_id"], kind="hash")
    db.create_index("stock", "pk", ["s_w_id", "s_i_id"], kind="hash")
