"""The five TPC-C transaction profiles (spec clause 2).

Each method runs one complete transaction against the engine: it begins,
reads and writes through indexes and the Data Table API, and commits —
or aborts and reports failure when it loses a write-write conflict.  The
NewOrder profile also performs the spec's 1% deliberate rollback through an
unused item id.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import TransactionAborted
from repro.workloads.tpcc.random_gen import TpccRandom
from repro.workloads.tpcc.schema import TPCC_TABLES, TpccConfig

if TYPE_CHECKING:
    from repro.db import Database
    from repro.txn.context import TransactionContext


@dataclass
class TxnCounters:
    """Outcome counters per profile."""

    committed: dict[str, int] = field(
        default_factory=lambda: {p: 0 for p in ("new_order", "payment", "order_status", "delivery", "stock_level")}
    )
    aborted: dict[str, int] = field(
        default_factory=lambda: {p: 0 for p in ("new_order", "payment", "order_status", "delivery", "stock_level")}
    )

    @property
    def total_committed(self) -> int:
        return sum(self.committed.values())


class TpccTransactions:
    """Executable TPC-C transaction profiles over a loaded database."""

    def __init__(
        self,
        db: "Database",
        config: TpccConfig,
        seed: int | None = None,
        max_retries: int = 5,
    ) -> None:
        self.db = db
        self.config = config
        self.rand = TpccRandom(seed)
        self.counters = TxnCounters()
        #: Conflict-abort retry budget per transaction (clause 2.4.1.4's
        #: "resubmit" rule; deliberate rollbacks are never resubmitted).
        self.max_retries = max_retries
        #: Transactions whose durability callback has fired — the paper's
        #: "results released to the client" set, used by the torture
        #: harness as the lower bound recovery must reach.
        self.acked_writes = 0
        self._m_retries = db.obs.counter(
            "workload.txn_retries_total",
            "transaction attempts retried after write-write conflicts",
        )
        self._cols = {
            table: {spec.name: i for i, spec in enumerate(columns)}
            for table, columns in TPCC_TABLES.items()
        }

    # ------------------------------------------------------------------ #
    # helpers                                                             #
    # ------------------------------------------------------------------ #

    def _c(self, table: str, name: str) -> int:
        return self._cols[table][name]

    def _values(self, table: str, **fields: Any) -> dict[int, Any]:
        ids = self._cols[table]
        return {ids[name]: value for name, value in fields.items()}

    def _named(self, table: str, row) -> dict[str, Any]:
        ids = self._cols[table]
        by_id = row.to_dict()
        return {name: by_id[i] for name, i in ids.items() if i in by_id}

    def _lookup_one(self, txn, table: str, index: str, key: tuple):
        hits = self.db.catalog.index(table, index).lookup(txn, key)
        if not hits:
            return None, None
        return hits[0]

    def _now(self) -> int:
        return time.time_ns() // 1000

    def _run(self, profile: str, body) -> bool:
        """One profile execution with conflict retry.

        Write-write conflict aborts are resubmitted through
        :func:`repro.txn.retry.retry_transaction` (bounded, jittered
        backoff; ``workload.txn_retries_total`` counts resubmissions).
        Semantic aborts — the deliberate NewOrder rollback, a missing
        lookup — are final and never retried.
        """
        from repro.txn.retry import retry_transaction

        def attempt(txn: "TransactionContext") -> bool:
            txn.on_durable(lambda t=txn: self._note_durable(t))
            ok = body(txn)
            if not ok and not txn.must_abort:
                # A semantic abort: roll back here so the retry helper sees
                # a finished transaction and returns instead of retrying.
                if txn.is_active:
                    self.db.abort(txn)
                return False
            return ok

        try:
            ok = bool(
                retry_transaction(
                    self.db,
                    attempt,
                    retries=self.max_retries,
                    rng=self.rand,
                    retry_counter=self._m_retries,
                )
            )
        except TransactionAborted:
            ok = False
        (self.counters.committed if ok else self.counters.aborted)[profile] += 1
        return ok

    def _note_durable(self, txn: "TransactionContext") -> None:
        from repro.txn.context import TxnState

        if txn.state is TxnState.COMMITTED and len(txn.redo_buffer) > 0:
            self.acked_writes += 1

    def _pick_customer(self, txn, w_id: int, d_id: int):
        """60/40 by-id vs by-last-name customer selection (clause 2.5.1.2)."""
        if self.rand.random() < 0.6:
            c_id = self.rand.nurand(1023, 1, self.config.customers_per_district)
            return self._lookup_one(txn, "customer", "pk", (w_id, d_id, c_id))
        last = self.rand.random_last_name(self.config.customers_per_district)
        index = self.db.catalog.index("customer", "by_name")
        matches = list(
            index.range_scan(txn, (w_id, d_id, last), (w_id, d_id, last + "￿"))
        )
        if not matches:
            c_id = self.rand.uniform(1, self.config.customers_per_district)
            return self._lookup_one(txn, "customer", "pk", (w_id, d_id, c_id))
        # Clause 2.5.2.2: the row at ceil(n/2) in first-name order.
        _, slot, row = matches[(len(matches) - 1) // 2]
        return slot, row

    # ------------------------------------------------------------------ #
    # profiles                                                            #
    # ------------------------------------------------------------------ #

    def new_order(self, w_id: int | None = None) -> bool:
        """The NewOrder transaction (clause 2.4)."""
        r = self.rand
        w_id = w_id or r.uniform(1, self.config.warehouses)
        d_id = r.uniform(1, self.config.districts_per_warehouse)
        c_id = r.nurand(1023, 1, self.config.customers_per_district)
        ol_cnt = r.uniform(5, 15)
        rollback = r.random() < self.config.new_order_rollback_rate
        lines = []
        for number in range(1, ol_cnt + 1):
            bad = rollback and number == ol_cnt
            i_id = 0 if bad else r.nurand(8191, 1, self.config.items)
            remote = self.config.warehouses > 1 and r.random() < 0.01
            supply_w = (
                r.choice([w for w in range(1, self.config.warehouses + 1) if w != w_id])
                if remote
                else w_id
            )
            lines.append((number, i_id, supply_w, r.uniform(1, 10)))

        def body(txn: "TransactionContext") -> bool:
            warehouse_slot, warehouse = self._lookup_one(txn, "warehouse", "pk", (w_id,))
            district_slot, district = self._lookup_one(txn, "district", "pk", (w_id, d_id))
            _, customer = self._lookup_one(txn, "customer", "pk", (w_id, d_id, c_id))
            if None in (warehouse, district, customer):
                return False
            d = self._named("district", district)
            o_id = d["d_next_o_id"]
            district_table = self.db.catalog.table("district")
            if not district_table.update(
                txn, district_slot, self._values("district", d_next_o_id=o_id + 1)
            ):
                return False
            oorder = self.db.catalog.table("oorder")
            oorder.insert(txn, self._values(
                "oorder",
                o_id=o_id, o_d_id=d_id, o_w_id=w_id, o_c_id=c_id,
                o_entry_d=self._now(), o_carrier_id=0,
                o_ol_cnt=ol_cnt, o_all_local=int(all(l[2] == w_id for l in lines)),
            ))
            self.db.catalog.table("new_order").insert(
                txn, self._values("new_order", no_o_id=o_id, no_d_id=d_id, no_w_id=w_id)
            )
            stock_table = self.db.catalog.table("stock")
            ol_table = self.db.catalog.table("order_line")
            for number, i_id, supply_w, quantity in lines:
                _, item = self._lookup_one(txn, "item", "pk", (i_id,))
                if item is None:
                    # The spec's deliberate rollback: unused item id.
                    return False
                stock_slot, stock = self._lookup_one(
                    txn, "stock", "pk", (supply_w, i_id)
                )
                if stock is None:
                    return False
                s = self._named("stock", stock)
                new_quantity = (
                    s["s_quantity"] - quantity
                    if s["s_quantity"] - quantity >= 10
                    else s["s_quantity"] - quantity + 91
                )
                if not stock_table.update(txn, stock_slot, self._values(
                    "stock",
                    s_quantity=new_quantity,
                    s_ytd=s["s_ytd"] + quantity,
                    s_order_cnt=s["s_order_cnt"] + 1,
                    s_remote_cnt=s["s_remote_cnt"] + (supply_w != w_id),
                )):
                    return False
                i = self._named("item", item)
                ol_table.insert(txn, self._values(
                    "order_line",
                    ol_o_id=o_id, ol_d_id=d_id, ol_w_id=w_id,
                    ol_number=number, ol_i_id=i_id, ol_supply_w_id=supply_w,
                    ol_delivery_d=0, ol_quantity=quantity,
                    ol_amount=quantity * i["i_price"],
                    ol_dist_info=s[f"s_dist_{d_id:02d}"] if d_id <= 10 else s["s_dist_01"],
                ))
            return True

        return self._run("new_order", body)

    def payment(self, w_id: int | None = None) -> bool:
        """The Payment transaction (clause 2.5)."""
        r = self.rand
        w_id = w_id or r.uniform(1, self.config.warehouses)
        d_id = r.uniform(1, self.config.districts_per_warehouse)
        amount = r.decimal(1.0, 5000.0)
        # Clause 2.5.1.2: 15% of payments are made by a customer of a
        # *remote* warehouse (cross-shard on a cluster).  The guard
        # short-circuits so single-warehouse RNG streams are unchanged.
        remote = (
            self.config.warehouses > 1
            and r.random() < self.config.payment_remote_rate
        )
        if remote:
            c_w_id = r.choice(
                [w for w in range(1, self.config.warehouses + 1) if w != w_id]
            )
            c_d_id = r.uniform(1, self.config.districts_per_warehouse)
        else:
            c_w_id, c_d_id = w_id, d_id

        def body(txn: "TransactionContext") -> bool:
            warehouse_slot, warehouse = self._lookup_one(txn, "warehouse", "pk", (w_id,))
            district_slot, district = self._lookup_one(txn, "district", "pk", (w_id, d_id))
            customer_slot, customer = self._pick_customer(txn, c_w_id, c_d_id)
            if None in (warehouse, district, customer):
                return False
            w = self._named("warehouse", warehouse)
            d = self._named("district", district)
            c = self._named("customer", customer)
            if not self.db.catalog.table("warehouse").update(
                txn, warehouse_slot, self._values("warehouse", w_ytd=w["w_ytd"] + amount)
            ):
                return False
            if not self.db.catalog.table("district").update(
                txn, district_slot, self._values("district", d_ytd=d["d_ytd"] + amount)
            ):
                return False
            delta = self._values(
                "customer",
                c_balance=c["c_balance"] - amount,
                c_ytd_payment=c["c_ytd_payment"] + amount,
                c_payment_cnt=c["c_payment_cnt"] + 1,
            )
            if c["c_credit"] == "BC":
                data = f"{c['c_id']} {d_id} {w_id} {amount:.2f}|{c['c_data']}"[:500]
                delta.update(self._values("customer", c_data=data))
            if not self.db.catalog.table("customer").update(txn, customer_slot, delta):
                return False
            self.db.catalog.table("history").insert(txn, self._values(
                "history",
                h_c_id=c["c_id"], h_c_d_id=c["c_d_id"], h_c_w_id=c["c_w_id"],
                h_d_id=d_id, h_w_id=w_id, h_date=self._now(),
                h_amount=amount, h_data=f"{w['w_name']}    {d['d_name']}"[:24],
            ))
            return True

        return self._run("payment", body)

    def order_status(self, w_id: int | None = None) -> bool:
        """The OrderStatus transaction (clause 2.6, read-only)."""
        r = self.rand
        w_id = w_id or r.uniform(1, self.config.warehouses)
        d_id = r.uniform(1, self.config.districts_per_warehouse)

        def body(txn: "TransactionContext") -> bool:
            _, customer = self._pick_customer(txn, w_id, d_id)
            if customer is None:
                return False
            c_id = self._named("customer", customer)["c_id"]
            by_customer = self.db.catalog.index("oorder", "by_customer")
            orders = list(by_customer.range_scan(
                txn, (w_id, d_id, c_id), (w_id, d_id, c_id + 1), column_ids=None,
            ))
            if not orders:
                return True  # a customer with no orders is a valid outcome
            _, _, order = orders[-1]
            o = self._named("oorder", order)
            ol_pk = self.db.catalog.index("order_line", "pk")
            lines = list(ol_pk.range_scan(
                txn, (w_id, d_id, o["o_id"]), (w_id, d_id, o["o_id"] + 1)
            ))
            return True

        return self._run("order_status", body)

    def delivery(self, w_id: int | None = None) -> bool:
        """The Delivery transaction (clause 2.7)."""
        r = self.rand
        w_id = w_id or r.uniform(1, self.config.warehouses)
        carrier = r.uniform(1, 10)

        def body(txn: "TransactionContext") -> bool:
            no_index = self.db.catalog.index("new_order", "pk")
            for d_id in range(1, self.config.districts_per_warehouse + 1):
                pending = list(
                    no_index.range_scan(txn, (w_id, d_id, 0), (w_id, d_id + 1, 0))
                )
                if not pending:
                    continue
                _, no_slot, no_row = pending[0]
                o_id = self._named("new_order", no_row)["no_o_id"]
                if not self.db.catalog.table("new_order").delete(txn, no_slot):
                    return False
                order_slot, order = self._lookup_one(txn, "oorder", "pk", (w_id, d_id, o_id))
                if order is None:
                    continue
                o = self._named("oorder", order)
                if not self.db.catalog.table("oorder").update(
                    txn, order_slot, self._values("oorder", o_carrier_id=carrier)
                ):
                    return False
                total = 0.0
                ol_table = self.db.catalog.table("order_line")
                for _, ol_slot, ol_row in self.db.catalog.index("order_line", "pk").range_scan(
                    txn, (w_id, d_id, o_id), (w_id, d_id, o_id + 1)
                ):
                    ol = self._named("order_line", ol_row)
                    total += ol["ol_amount"]
                    if not ol_table.update(
                        txn, ol_slot, self._values("order_line", ol_delivery_d=self._now())
                    ):
                        return False
                customer_slot, customer = self._lookup_one(
                    txn, "customer", "pk", (w_id, d_id, o["o_c_id"])
                )
                if customer is None:
                    continue
                c = self._named("customer", customer)
                if not self.db.catalog.table("customer").update(
                    txn, customer_slot, self._values(
                        "customer",
                        c_balance=c["c_balance"] + total,
                        c_delivery_cnt=c["c_delivery_cnt"] + 1,
                    )
                ):
                    return False
            return True

        return self._run("delivery", body)

    def stock_level(self, w_id: int | None = None) -> bool:
        """The StockLevel transaction (clause 2.8, read-only)."""
        r = self.rand
        w_id = w_id or r.uniform(1, self.config.warehouses)
        d_id = r.uniform(1, self.config.districts_per_warehouse)
        threshold = r.uniform(10, 20)

        def body(txn: "TransactionContext") -> bool:
            _, district = self._lookup_one(txn, "district", "pk", (w_id, d_id))
            if district is None:
                return False
            next_o_id = self._named("district", district)["d_next_o_id"]
            seen: set[int] = set()
            for _, _, ol_row in self.db.catalog.index("order_line", "pk").range_scan(
                txn, (w_id, d_id, max(1, next_o_id - 20)), (w_id, d_id, next_o_id)
            ):
                seen.add(self._named("order_line", ol_row)["ol_i_id"])
            low = 0
            for i_id in seen:
                _, stock = self._lookup_one(txn, "stock", "pk", (w_id, i_id))
                if stock is not None:
                    if self._named("stock", stock)["s_quantity"] < threshold:
                        low += 1
            return True

        return self._run("stock_level", body)
