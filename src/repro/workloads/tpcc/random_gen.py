"""TPC-C random data generation (spec clause 4.3).

Implements the non-uniform random function NURand, the customer last-name
syllable scheme, and the a-string/n-string generators the loader and
transactions share.
"""

from __future__ import annotations

import random

#: The 10 syllables of clause 4.3.2.3; a last name is three of them.
SYLLABLES = (
    "BAR", "OUGHT", "ABLE", "PRI", "PRES",
    "ESE", "ANTI", "CALLY", "ATION", "EING",
)

#: Runtime constants for NURand (clause 2.1.6); fixed per database.
C_LAST = 157
C_C_ID = 91
C_OL_I_ID = 4211


class TpccRandom:
    """A seeded source of spec-conformant random TPC-C data."""

    def __init__(self, seed: int | None = None) -> None:
        self.rng = random.Random(seed)

    def uniform(self, low: int, high: int) -> int:
        """Uniform integer in [low, high]."""
        return self.rng.randint(low, high)

    def nurand(self, a: int, x: int, y: int) -> int:
        """Non-uniform random (clause 2.1.6): NURand(A, x, y)."""
        c = {255: C_LAST, 1023: C_C_ID, 8191: C_OL_I_ID}.get(a, 0)
        return (
            (self.uniform(0, a) | self.uniform(x, y)) + c
        ) % (y - x + 1) + x

    def last_name(self, number: int) -> str:
        """Customer last name from a three-syllable number (clause 4.3.2.3)."""
        return (
            SYLLABLES[number // 100]
            + SYLLABLES[(number // 10) % 10]
            + SYLLABLES[number % 10]
        )

    def random_last_name(self, customer_count: int) -> str:
        """A last name for a running transaction: NURand(255, 0, 999),
        clamped for scaled-down databases."""
        number = self.nurand(255, 0, min(999, customer_count - 1))
        return self.last_name(number)

    def a_string(self, low: int, high: int) -> str:
        """Alphanumeric string of random length in [low, high]."""
        length = self.uniform(low, high)
        alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
        return "".join(self.rng.choice(alphabet) for _ in range(length))

    def n_string(self, low: int, high: int) -> str:
        """Numeric string of random length in [low, high]."""
        length = self.uniform(low, high)
        return "".join(self.rng.choice("0123456789") for _ in range(length))

    def zip_code(self) -> str:
        """A zip: 4 random digits + '11111' (clause 4.3.2.7)."""
        return self.n_string(4, 4) + "11111"

    def decimal(self, low: float, high: float, digits: int = 2) -> float:
        """Uniform decimal with fixed precision."""
        return round(self.rng.uniform(low, high), digits)

    def data_string(self, low: int, high: int, original_rate: float = 0.1) -> str:
        """An a-string where ~10% embed 'ORIGINAL' (clause 4.3.3.1)."""
        s = self.a_string(low, high)
        if self.rng.random() < original_rate and len(s) >= 8:
            pos = self.uniform(0, len(s) - 8)
            s = s[:pos] + "ORIGINAL" + s[pos + 8 :]
        return s

    def choice(self, seq):
        """Uniform choice from a sequence."""
        return self.rng.choice(seq)

    def shuffle(self, seq) -> None:
        """In-place shuffle (used for customer id permutations)."""
        self.rng.shuffle(seq)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self.rng.random()
