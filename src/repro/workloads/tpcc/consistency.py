"""TPC-C consistency conditions (spec clause 3.3.2).

The specification defines database-wide invariants that must hold after
any mix of transactions.  These are the strongest correctness oracle
available for the engine: they cross-check MVCC, index maintenance, and
the transformation pipeline all at once.

Implemented conditions:

1. ``W_YTD = sum(D_YTD)`` for every warehouse.
2. ``D_NEXT_O_ID - 1 = max(O_ID) = max(NO_O_ID)`` per district (when the
   district has orders / undelivered orders).
3. ``max(NO_O_ID) - min(NO_O_ID) + 1`` = number of NEW_ORDER rows per
   district (the backlog is contiguous).
4. ``O_OL_CNT`` equals the number of ORDER_LINE rows of the order, and
   ``sum(O_OL_CNT)`` equals the district's ORDER_LINE count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.db import Database


@dataclass
class ConsistencyReport:
    """Violations found by one check pass (empty = consistent)."""

    violations: list[str] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return not self.violations

    def add(self, message: str) -> None:
        self.violations.append(message)


def _rows(db: "Database", txn, table: str, columns: list[str]) -> list[tuple]:
    info = db.catalog.get(table)
    column_ids = [info.column_id(c) for c in columns]
    return [
        tuple(row.get(c) for c in column_ids)
        for _, row in info.table.scan(txn, column_ids)
    ]


def check_consistency(db: "Database") -> ConsistencyReport:
    """Run all implemented conditions against a consistent snapshot."""
    report = ConsistencyReport()
    txn = db.begin()
    try:
        _check_ytd(db, txn, report)
        _check_order_ids(db, txn, report)
        _check_order_lines(db, txn, report)
    finally:
        db.commit(txn)
    return report


def _check_ytd(db, txn, report: ConsistencyReport) -> None:
    warehouse_ytd = {
        w_id: ytd for w_id, ytd in _rows(db, txn, "warehouse", ["w_id", "w_ytd"])
    }
    district_sums: dict[int, float] = {}
    for w_id, ytd in _rows(db, txn, "district", ["d_w_id", "d_ytd"]):
        district_sums[w_id] = district_sums.get(w_id, 0.0) + ytd
    for w_id, w_ytd in warehouse_ytd.items():
        d_sum = district_sums.get(w_id, 0.0)
        if abs(w_ytd - d_sum) > 1e-6 * max(1.0, abs(w_ytd)):
            report.add(
                f"condition 1: warehouse {w_id} W_YTD={w_ytd} != sum(D_YTD)={d_sum}"
            )


def _check_order_ids(db, txn, report: ConsistencyReport) -> None:
    next_o_id = {
        (w, d): n
        for d, w, n in _rows(db, txn, "district", ["d_id", "d_w_id", "d_next_o_id"])
    }
    max_o_id: dict[tuple[int, int], int] = {}
    for o_id, d_id, w_id in _rows(db, txn, "oorder", ["o_id", "o_d_id", "o_w_id"]):
        key = (w_id, d_id)
        max_o_id[key] = max(max_o_id.get(key, 0), o_id)
    new_orders: dict[tuple[int, int], list[int]] = {}
    for o_id, d_id, w_id in _rows(db, txn, "new_order", ["no_o_id", "no_d_id", "no_w_id"]):
        new_orders.setdefault((w_id, d_id), []).append(o_id)

    for key, next_id in next_o_id.items():
        if key in max_o_id and max_o_id[key] != next_id - 1:
            report.add(
                f"condition 2: district {key} max(O_ID)={max_o_id[key]} "
                f"!= D_NEXT_O_ID-1={next_id - 1}"
            )
    for key, backlog in new_orders.items():
        if key in next_o_id and max(backlog) != next_o_id[key] - 1:
            # Only holds when the newest order is undelivered; the strict
            # spec condition compares against max(NO_O_ID) when present.
            if max(backlog) > next_o_id[key] - 1:
                report.add(
                    f"condition 2: district {key} max(NO_O_ID)={max(backlog)} "
                    f"beyond D_NEXT_O_ID-1={next_o_id[key] - 1}"
                )
        # Condition 3: the undelivered backlog is contiguous.
        if max(backlog) - min(backlog) + 1 != len(backlog):
            report.add(
                f"condition 3: district {key} NEW_ORDER ids not contiguous: "
                f"[{min(backlog)}, {max(backlog)}] but {len(backlog)} rows"
            )


def _check_order_lines(db, txn, report: ConsistencyReport) -> None:
    ol_counts: dict[tuple[int, int, int], int] = {}
    for o_id, d_id, w_id in _rows(
        db, txn, "order_line", ["ol_o_id", "ol_d_id", "ol_w_id"]
    ):
        key = (w_id, d_id, o_id)
        ol_counts[key] = ol_counts.get(key, 0) + 1
    for o_id, d_id, w_id, ol_cnt in _rows(
        db, txn, "oorder", ["o_id", "o_d_id", "o_w_id", "o_ol_cnt"]
    ):
        actual = ol_counts.get((w_id, d_id, o_id), 0)
        if actual != ol_cnt:
            report.add(
                f"condition 4: order ({w_id},{d_id},{o_id}) O_OL_CNT={ol_cnt} "
                f"but {actual} order lines"
            )
