"""TPC-C (revision 5.9 [50]): the OLTP workload of Section 6.1.

All nine tables, all five transaction profiles, and the spec's random
generation rules, scaled by :class:`TpccConfig` so the same code runs both
spec-sized and laptop-sized databases.
"""

from repro.workloads.tpcc.schema import TpccConfig, create_tpcc_tables
from repro.workloads.tpcc.loader import TpccLoader
from repro.workloads.tpcc.transactions import TpccTransactions
from repro.workloads.tpcc.driver import TpccDriver, TpccRun

__all__ = [
    "TpccConfig",
    "TpccDriver",
    "TpccLoader",
    "TpccRun",
    "TpccTransactions",
    "create_tpcc_tables",
]
