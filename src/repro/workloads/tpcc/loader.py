"""TPC-C initial database population (spec clause 4.3.3)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.workloads.tpcc.random_gen import TpccRandom
from repro.workloads.tpcc.schema import TPCC_TABLES, TpccConfig

if TYPE_CHECKING:
    from repro.db import Database

#: Epoch-micros stand-in for load time.
LOAD_TIMESTAMP = 1_500_000_000_000_000


class TpccLoader:
    """Populates all nine tables for a configured scale."""

    def __init__(self, db: "Database", config: TpccConfig, seed: int | None = 0) -> None:
        self.db = db
        self.config = config
        self.rand = TpccRandom(seed)
        self._column_ids = {
            table: {spec.name: i for i, spec in enumerate(columns)}
            for table, columns in TPCC_TABLES.items()
        }

    def load(self) -> None:
        """Populate the whole database in loader transactions."""
        self._load_items()
        for w_id in range(1, self.config.warehouses + 1):
            self._load_warehouse(w_id)

    # ------------------------------------------------------------------ #

    def _values(self, table: str, **fields: Any) -> dict[int, Any]:
        ids = self._column_ids[table]
        return {ids[name]: value for name, value in fields.items()}

    def _insert(self, txn, table: str, **fields: Any) -> None:
        self.db.catalog.table(table).insert(txn, self._values(table, **fields))

    def _load_items(self) -> None:
        r = self.rand
        with self.db.transaction() as txn:
            for i_id in range(1, self.config.items + 1):
                self._insert(
                    txn, "item",
                    i_id=i_id,
                    i_im_id=r.uniform(1, 10_000),
                    i_name=r.a_string(14, 24),
                    i_price=r.decimal(1.0, 100.0),
                    i_data=r.data_string(26, 50),
                )

    def _load_warehouse(self, w_id: int) -> None:
        r = self.rand
        with self.db.transaction() as txn:
            self._insert(
                txn, "warehouse",
                w_id=w_id,
                w_name=r.a_string(6, 10),
                w_street_1=r.a_string(10, 20),
                w_street_2=r.a_string(10, 20),
                w_city=r.a_string(10, 20),
                w_state=r.a_string(2, 2),
                w_zip=r.zip_code(),
                w_tax=r.decimal(0.0, 0.2, 4),
                # Spec: 300,000 with 10 districts of 30,000 each; keep the
                # consistency condition W_YTD = sum(D_YTD) at any scale.
                w_ytd=30_000.0 * self.config.districts_per_warehouse,
            )
            for i_id in range(1, self.config.stock_per_warehouse + 1):
                self._insert(
                    txn, "stock",
                    s_i_id=i_id,
                    s_w_id=w_id,
                    s_quantity=r.uniform(10, 100),
                    **{f"s_dist_{d:02d}": r.a_string(24, 24) for d in range(1, 11)},
                    s_ytd=0,
                    s_order_cnt=0,
                    s_remote_cnt=0,
                    s_data=r.data_string(26, 50),
                )
        for d_id in range(1, self.config.districts_per_warehouse + 1):
            self._load_district(w_id, d_id)

    def _load_district(self, w_id: int, d_id: int) -> None:
        r = self.rand
        customers = self.config.customers_per_district
        orders = min(self.config.initial_orders_per_district, customers)
        with self.db.transaction() as txn:
            self._insert(
                txn, "district",
                d_id=d_id,
                d_w_id=w_id,
                d_name=r.a_string(6, 10),
                d_street_1=r.a_string(10, 20),
                d_street_2=r.a_string(10, 20),
                d_city=r.a_string(10, 20),
                d_state=r.a_string(2, 2),
                d_zip=r.zip_code(),
                d_tax=r.decimal(0.0, 0.2, 4),
                d_ytd=30_000.0,
                d_next_o_id=orders + 1,
            )
            for c_id in range(1, customers + 1):
                # Clause 4.3.3.1: first 1000 names iterate, the rest NURand.
                name_number = (
                    c_id - 1 if c_id <= 1000 else r.nurand(255, 0, 999)
                )
                self._insert(
                    txn, "customer",
                    c_id=c_id,
                    c_d_id=d_id,
                    c_w_id=w_id,
                    c_first=r.a_string(8, 16),
                    c_middle="OE",
                    c_last=r.last_name(name_number % 1000),
                    c_street_1=r.a_string(10, 20),
                    c_street_2=r.a_string(10, 20),
                    c_city=r.a_string(10, 20),
                    c_state=r.a_string(2, 2),
                    c_zip=r.zip_code(),
                    c_phone=r.n_string(16, 16),
                    c_since=LOAD_TIMESTAMP,
                    c_credit="BC" if r.random() < 0.1 else "GC",
                    c_credit_lim=50_000.0,
                    c_discount=r.decimal(0.0, 0.5, 4),
                    c_balance=-10.0,
                    c_ytd_payment=10.0,
                    c_payment_cnt=1,
                    c_delivery_cnt=0,
                    c_data=r.a_string(100, 200),
                )
                self._insert(
                    txn, "history",
                    h_c_id=c_id,
                    h_c_d_id=d_id,
                    h_c_w_id=w_id,
                    h_d_id=d_id,
                    h_w_id=w_id,
                    h_date=LOAD_TIMESTAMP,
                    h_amount=10.0,
                    h_data=r.a_string(12, 24),
                )
            # Initial orders: each customer ordered exactly once, in a
            # random permutation (clause 4.3.3.1).
            customer_ids = list(range(1, customers + 1))
            r.shuffle(customer_ids)
            for o_id, c_id in enumerate(customer_ids[:orders], start=1):
                ol_cnt = r.uniform(5, 15)
                delivered = o_id < orders * 0.7
                self._insert(
                    txn, "oorder",
                    o_id=o_id,
                    o_d_id=d_id,
                    o_w_id=w_id,
                    o_c_id=c_id,
                    o_entry_d=LOAD_TIMESTAMP,
                    o_carrier_id=r.uniform(1, 10) if delivered else 0,
                    o_ol_cnt=ol_cnt,
                    o_all_local=1,
                )
                if not delivered:
                    self._insert(
                        txn, "new_order", no_o_id=o_id, no_d_id=d_id, no_w_id=w_id
                    )
                for number in range(1, ol_cnt + 1):
                    self._insert(
                        txn, "order_line",
                        ol_o_id=o_id,
                        ol_d_id=d_id,
                        ol_w_id=w_id,
                        ol_number=number,
                        ol_i_id=r.uniform(1, self.config.items),
                        ol_supply_w_id=w_id,
                        ol_delivery_d=LOAD_TIMESTAMP if delivered else 0,
                        ol_quantity=5,
                        ol_amount=0.0 if delivered else r.decimal(0.01, 9999.99),
                        ol_dist_info=r.a_string(24, 24),
                    )
