"""Exception hierarchy shared across the engine.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch engine failures without also swallowing programming errors
such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ArrowFormatError(ReproError):
    """The Arrow-format layer was asked to build or parse invalid data."""


class StorageError(ReproError):
    """A block, layout, or data-table invariant was violated."""


class BlockStateError(StorageError):
    """An operation was attempted in an incompatible block state."""


class TransactionError(ReproError):
    """Base class for transaction-engine failures."""


class TransactionAborted(TransactionError):
    """The transaction was aborted and its effects rolled back.

    Raised from :meth:`repro.txn.manager.TransactionManager.commit` when the
    transaction had previously been marked ``must_abort``, and from write
    paths when a write-write conflict forces an abort.
    """


class WriteWriteConflict(TransactionAborted):
    """Two concurrent transactions tried to write the same tuple.

    The paper's engine disallows write-write conflicts outright to avoid
    cascading rollbacks (Section 3.1); the loser aborts immediately.
    """


class CoordinationAbort(TransactionAborted):
    """A distributed transaction was aborted by its 2PC coordinator.

    Raised by :class:`repro.cluster.coordinator.TwoPhaseCoordinator` when
    the prepare phase fails for an *infrastructural* reason — a shard in
    degraded mode, a coordinator-log write error, a participant lost to a
    write-write conflict during prepare.  These are transient by
    construction (the transaction's effects are fully rolled back on every
    shard), so :func:`repro.txn.retry.retry_transaction` treats them as
    retryable, exactly like single-node conflict aborts.  Semantic aborts
    decided by the workload itself never surface as this type.
    """


class TwoPhaseInDoubt(TransactionError):
    """A distributed commit could neither complete nor safely abort.

    The coordinator wrote (part of) a commit decision it could not make
    durable *and* could not rewind away — so aborting the participants
    could diverge from what crash recovery would later decide.  The
    participants are left prepared; recovery resolves them from the
    coordinator log (presumed abort).  Not retryable: the prepared
    transactions pin their write sets until resolution.
    """


class DegradedError(TransactionError):
    """The database is in degraded read-only mode.

    Entered when the log device fails persistently (see
    :meth:`repro.wal.manager.LogManager` and :meth:`repro.db.Database.health`):
    reads keep working against the in-memory state, but new writers are
    rejected with this error because their commits could never become
    durable.  Deliberately *not* a :class:`TransactionAborted` subclass so
    retry helpers never spin on it.
    """


class SerializationError(ReproError):
    """A wire protocol failed to encode or decode a message."""


class ServiceError(ReproError):
    """The transactional network service could not process a request."""


class ServiceOverload(ServiceError):
    """The service shed this request instead of queuing it unboundedly.

    Raised by the admission controller (connection/in-flight limits,
    per-tenant rate limits, a full accept queue, an expired deadline) and
    by the health gate while writes are rejected.  ``reason`` is the
    machine-readable shed code that also labels the
    ``service.shed_total`` metric and travels on the wire as the
    explicit too-busy error response — overload produces fast rejections,
    never unbounded queues.
    """

    def __init__(self, reason: str, message: str | None = None) -> None:
        super().__init__(message or f"request shed: {reason}")
        self.reason = reason


class WorkloadError(ReproError):
    """A workload generator or driver was configured inconsistently."""


class CatalogError(ReproError):
    """A catalog lookup failed or a definition conflicted."""


class IndexError_(ReproError):
    """An index operation failed (named with a trailing underscore to avoid
    shadowing the builtin :class:`IndexError`)."""


class RecoveryError(ReproError):
    """The write-ahead log could not be replayed."""
