"""Client-side RDMA export (Section 5, "Shipping Data with RDMA").

The server writes block buffers straight into the client's memory: no
serialization, no wire format, no client parsing — the NIC is the only
bottleneck for frozen blocks.  Hot blocks must still be materialized
transactionally before the NIC can read them, and because the NIC bypasses
the CPU cache the freshly materialized buffers are transferred slightly
slower than Flight would send them (the effect Section 6.3 observes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.transform.arrow_view import block_to_record_batch
from repro.transform.transformer import snapshot_transform

if TYPE_CHECKING:
    from repro.storage.data_table import DataTable
    from repro.txn.manager import TransactionManager

#: Relative slowdown for DMA out of freshly-written (cache-resident) data:
#: the NIC reads DRAM, missing the materialized block in cache.
CACHE_BYPASS_PENALTY = 1.10


@dataclass
class RdmaTransfer:
    """One modeled RDMA bulk export."""

    frozen_bytes: int
    materialized_bytes: int
    frozen_blocks: int
    materialized_blocks: int

    @property
    def total_bytes(self) -> int:
        """Bytes landed in the client's memory."""
        return self.frozen_bytes + self.materialized_bytes

    @property
    def effective_bytes(self) -> float:
        """Bytes weighted by the cache-bypass penalty on hot data, used to
        compute NIC transfer time."""
        return self.frozen_bytes + self.materialized_bytes * CACHE_BYPASS_PENALTY


def export_rdma(
    txn_manager: "TransactionManager", table: "DataTable"
) -> RdmaTransfer:
    """Compute the buffers an RDMA export would push to the client.

    Frozen blocks are read in place under the reader counter; hot blocks
    pay a transactional materialization (real CPU work happens here — the
    caller times it), after which their byte counts are charged at the
    cache-bypass rate.
    """
    frozen_bytes = materialized_bytes = 0
    frozen_blocks = materialized_blocks = 0
    for block in list(table.blocks):
        if block.begin_frozen_read():
            try:
                batch = block_to_record_batch(block)
                frozen_bytes += batch.nbytes()
                frozen_blocks += 1
            finally:
                block.end_frozen_read()
        else:
            batch = snapshot_transform(txn_manager, table, block)
            materialized_bytes += batch.nbytes()
            materialized_blocks += 1
    return RdmaTransfer(
        frozen_bytes, materialized_bytes, frozen_blocks, materialized_blocks
    )
