"""A Flight-style RPC service surface over the export layer.

Arrow Flight structures bulk data access as: ``list_flights`` (what is
available), ``get_schema``, and ``do_get(ticket)`` (stream the data).  This
module reproduces that call pattern over the engine so downstream tools
program against a service, not against engine internals.  Tickets can name
a whole table or a block range, enabling partitioned parallel consumption
— the "client fetches shards concurrently" pattern Flight was designed for.

This module is the in-process codec/ticket layer only.  To actually serve
tables over a network socket, use the transactional front door
(:mod:`repro.service`): ``python -m repro.service serve`` exposes the same
Arrow-IPC stream as the ``export`` operation — with admission control,
health-gated writes, deadlines, and graceful drain — and
``python -m repro.service loadgen`` drives it open-loop.
"""

from __future__ import annotations

import io
import json
import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.arrowfmt import ipc
from repro.arrowfmt.table import Table
from repro.errors import SerializationError
from repro.export.flight import _block_batch, _decode_dictionary_batch
from repro.transform.arrow_view import table_schema

if TYPE_CHECKING:
    from repro.db import Database


@dataclass(frozen=True)
class FlightTicket:
    """Names a retrievable stream: a table, optionally a block range."""

    table: str
    block_start: int = 0
    block_count: int | None = None  # None = to the end

    def encode(self) -> bytes:
        """Opaque wire form of the ticket."""
        return json.dumps(
            {"table": self.table, "start": self.block_start, "count": self.block_count}
        ).encode("utf-8")

    @staticmethod
    def decode(raw: bytes) -> "FlightTicket":
        try:
            spec = json.loads(raw)
            return FlightTicket(spec["table"], spec["start"], spec["count"])
        except (ValueError, KeyError, TypeError) as exc:
            raise SerializationError(f"bad flight ticket: {exc}") from exc


@dataclass
class FlightInfo:
    """What ``list_flights`` advertises per table."""

    table: str
    total_rows: int
    total_blocks: int
    endpoints: list[FlightTicket]


class FlightServer:
    """The server side: catalog discovery and ticket-driven streams."""

    def __init__(self, db: "Database", partition_blocks: int = 8) -> None:
        self.db = db
        #: Blocks per advertised endpoint; clients fetch endpoints in
        #: parallel.
        self.partition_blocks = max(1, partition_blocks)

    def list_flights(self) -> list[FlightInfo]:
        """Advertise every table with partitioned endpoints."""
        flights = []
        for name in self.db.catalog.table_names():
            table = self.db.catalog.table(name)
            block_count = len(table.blocks)
            endpoints = [
                FlightTicket(name, start, min(self.partition_blocks, block_count - start))
                for start in range(0, block_count, self.partition_blocks)
            ] or [FlightTicket(name, 0, 0)]
            flights.append(
                FlightInfo(name, table.live_tuple_count(), block_count, endpoints)
            )
        return flights

    def get_schema(self, table_name: str) -> bytes:
        """Serialized schema for a table."""
        layout = self.db.catalog.table(table_name).layout
        return json.dumps(table_schema(layout).to_json()).encode("utf-8")

    def do_get(self, ticket: FlightTicket | bytes) -> bytes:
        """Stream the data a ticket names (Arrow IPC bytes).

        Frozen blocks ship zero-copy; hot blocks in the range are
        materialized transactionally, exactly as in Section 5.
        """
        if isinstance(ticket, bytes):
            ticket = FlightTicket.decode(ticket)
        table = self.db.catalog.table(ticket.table)
        schema = table_schema(table.layout)
        blocks = list(table.blocks)
        end = (
            len(blocks)
            if ticket.block_count is None
            else ticket.block_start + ticket.block_count
        )
        selected = blocks[ticket.block_start : end]
        out = io.BytesIO()
        out.write(ipc.MAGIC)
        header = json.dumps(schema.to_json()).encode("utf-8")
        out.write(struct.pack("<i", len(header)))
        out.write(header)
        for block in selected:
            batch = _block_batch(self.db.txn_manager, table, block)
            if batch is None or batch.num_rows == 0:
                continue
            if batch.schema != schema:
                batch = _decode_dictionary_batch(batch, schema)
            ipc.write_batch(out, batch)
        out.write(b"EOS\x00")
        return out.getvalue()


class FlightClient:
    """The client side: discovery + (optionally sharded) retrieval."""

    def __init__(self, server: FlightServer) -> None:
        self.server = server

    def fetch_table(self, table_name: str) -> Table:
        """Fetch all endpoints of a table and concatenate the streams."""
        flights = {f.table: f for f in self.server.list_flights()}
        try:
            info = flights[table_name]
        except KeyError:
            raise SerializationError(f"no flight for table {table_name!r}") from None
        parts = [
            ipc.read_table(self.server.do_get(endpoint))
            for endpoint in info.endpoints
        ]
        return Table.concat(parts)

    def iter_batches(self, table_name: str) -> Iterator:
        """Stream batches endpoint by endpoint."""
        for f in self.server.list_flights():
            if f.table != table_name:
                continue
            for endpoint in f.endpoints:
                for batch in ipc.read_table(self.server.do_get(endpoint)).batches:
                    yield batch
            return
        raise SerializationError(f"no flight for table {table_name!r}")
