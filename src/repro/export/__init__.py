"""Data export to external tools (Sections 5 and 6.3).

Four export mechanisms over one simulated network:

- :mod:`repro.export.postgres_wire` — the row-based PostgreSQL protocol,
- :mod:`repro.export.vectorized` — the columnar wire protocol of Raasveldt
  & Mühleisen [46],
- :mod:`repro.export.flight` — Arrow Flight RPC: frozen blocks ship as raw
  Arrow buffers with no per-value serialization; hot blocks are first
  materialized through a transactional snapshot,
- :mod:`repro.export.rdma` — client-side RDMA: no server CPU serialization
  at all, bounded by NIC bandwidth.

CPU costs (serialization, parsing) are *measured* on the real serializers;
wire time is *modeled* by :class:`~repro.export.network.SimulatedNetwork`.
"""

from repro.export.network import NetworkProfile, SimulatedNetwork
from repro.export.exporter import ExportResult, TableExporter

__all__ = ["ExportResult", "NetworkProfile", "SimulatedNetwork", "TableExporter"]
