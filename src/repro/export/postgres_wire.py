"""The row-based PostgreSQL wire protocol (the Figure 15 baseline).

Faithful to the shape of the v3 protocol's ``DataRow`` messages: each tuple
becomes one message of text-encoded fields, each prefixed by its length.
The costs this reproduces are the real ones: per-value text conversion on
the server, one message per row on the wire, and per-value parsing on the
client — the serialization bottleneck Section 6.3 identifies.
"""

from __future__ import annotations

import io
import struct
from typing import Any, Iterable, Sequence

from repro.errors import SerializationError

_NULL = -1


def encode_row(values: Sequence[Any]) -> bytes:
    """Encode one tuple as a DataRow-style message."""
    body = io.BytesIO()
    body.write(struct.pack("<H", len(values)))
    for value in values:
        if value is None:
            body.write(struct.pack("<i", _NULL))
            continue
        if isinstance(value, bytes):
            raw = value
        elif isinstance(value, float):
            raw = repr(value).encode("ascii")
        elif isinstance(value, bool):
            raw = b"t" if value else b"f"
        else:
            raw = str(value).encode("utf-8")
        body.write(struct.pack("<i", len(raw)))
        body.write(raw)
    payload = body.getvalue()
    return struct.pack("<cI", b"D", len(payload)) + payload


def encode_rows(rows: Iterable[Sequence[Any]]) -> tuple[bytes, int]:
    """Encode many tuples; returns (stream, message count)."""
    out = io.BytesIO()
    count = 0
    for row in rows:
        out.write(encode_row(row))
        count += 1
    return out.getvalue(), count


def decode_rows(raw: bytes) -> list[tuple]:
    """Client-side parse back into tuples of strings/bytes/None.

    Like a real driver, the client sees text fields; numeric re-typing is
    the consumer's job (and more client-side cost in real pipelines).
    """
    rows = []
    stream = io.BytesIO(raw)
    while True:
        header = stream.read(5)
        if not header:
            return rows
        if len(header) != 5 or header[:1] != b"D":
            raise SerializationError("corrupt DataRow stream")
        (length,) = struct.unpack("<I", header[1:])
        body = stream.read(length)
        if len(body) != length:
            raise SerializationError("truncated DataRow message")
        (field_count,) = struct.unpack_from("<H", body, 0)
        offset = 2
        fields: list[Any] = []
        for _ in range(field_count):
            (flen,) = struct.unpack_from("<i", body, offset)
            offset += 4
            if flen == _NULL:
                fields.append(None)
            else:
                fields.append(body[offset : offset + flen].decode("utf-8", "replace"))
                offset += flen
        rows.append(tuple(fields))
