"""The vectorized (column-batch) wire protocol of Raasveldt & Mühleisen.

Tuples travel in column-organized batches instead of rows, which amortizes
per-message overhead and lets fixed-width columns be packed with bulk
copies.  It is still a *wire format*: the server converts storage into the
format and the client parses it back out — the two steps Arrow-native
export eliminates.  Batch layout::

    'VB'  row_count:u32  column_count:u16
    per column: type_tag:u8 then
      fixed:  null bitmap (row_count bits) + packed values
      varlen: null bitmap + u32 lengths + concatenated bytes
"""

from __future__ import annotations

import io
import struct
from typing import Any

import numpy as np

from repro.errors import SerializationError

_TAG_INT64 = 0
_TAG_FLOAT64 = 1
_TAG_VARLEN = 2

DEFAULT_BATCH_ROWS = 2048


def encode_batch(columns: list[list[Any]]) -> bytes:
    """Encode one batch given per-column Python value lists."""
    if not columns:
        raise SerializationError("empty batch")
    row_count = len(columns[0])
    out = io.BytesIO()
    out.write(b"VB")
    out.write(struct.pack("<IH", row_count, len(columns)))
    for values in columns:
        if len(values) != row_count:
            raise SerializationError("ragged batch")
        nulls = np.array([v is None for v in values], dtype=bool)
        tag, body = _encode_column(values, nulls)
        out.write(struct.pack("<B", tag))
        out.write(np.packbits(nulls, bitorder="little").tobytes())
        out.write(body)
    return out.getvalue()


def _encode_column(values: list[Any], nulls: np.ndarray) -> tuple[int, bytes]:
    sample = next((v for v in values if v is not None), None)
    if isinstance(sample, float):
        packed = np.array(
            [0.0 if v is None else float(v) for v in values], dtype=np.float64
        )
        return _TAG_FLOAT64, packed.tobytes()
    if isinstance(sample, (int, np.integer)) or sample is None:
        packed = np.array(
            [0 if v is None else int(v) for v in values], dtype=np.int64
        )
        return _TAG_INT64, packed.tobytes()
    chunks = [
        b"" if v is None else (v.encode("utf-8") if isinstance(v, str) else bytes(v))
        for v in values
    ]
    lengths = np.array([len(c) for c in chunks], dtype=np.uint32)
    return _TAG_VARLEN, lengths.tobytes() + b"".join(chunks)


def decode_batch(raw: bytes) -> list[list[Any]]:
    """Client-side parse of one batch back into per-column lists."""
    if raw[:2] != b"VB":
        raise SerializationError("not a vectorized batch")
    if len(raw) < 8:
        raise SerializationError("truncated batch header")
    row_count, column_count = struct.unpack_from("<IH", raw, 2)
    offset = 8
    bitmap_bytes = (row_count + 7) // 8
    columns: list[list[Any]] = []

    def take(count: int, dtype) -> np.ndarray:
        nonlocal offset
        nbytes = count * np.dtype(dtype).itemsize
        if offset + nbytes > len(raw):
            raise SerializationError("truncated batch body")
        out = np.frombuffer(raw, dtype=dtype, count=count, offset=offset)
        offset += nbytes
        return out

    for _ in range(column_count):
        if offset + 1 > len(raw):
            raise SerializationError("truncated batch body")
        (tag,) = struct.unpack_from("<B", raw, offset)
        offset += 1
        nulls = np.unpackbits(take(bitmap_bytes, np.uint8), bitorder="little")[
            :row_count
        ].astype(bool)
        if len(nulls) < row_count:
            raise SerializationError("truncated null bitmap")
        if tag in (_TAG_INT64, _TAG_FLOAT64):
            packed = take(row_count, np.int64 if tag == _TAG_INT64 else np.float64)
            values = [None if nulls[i] else packed[i].item() for i in range(row_count)]
        elif tag == _TAG_VARLEN:
            lengths = take(row_count, np.uint32)
            if offset + int(lengths.sum()) > len(raw):
                raise SerializationError("truncated varlen payload")
            values = []
            for i in range(row_count):
                n = int(lengths[i])
                values.append(
                    None if nulls[i] else raw[offset : offset + n].decode("utf-8", "replace")
                )
                offset += n
        else:
            raise SerializationError(f"unknown column tag {tag}")
        columns.append(values)
    return columns


def encode_table(
    column_values: list[list[Any]],
    batch_rows: int = DEFAULT_BATCH_ROWS,
) -> tuple[bytes, int]:
    """Encode a whole table as consecutive batches; returns (stream, count)."""
    if not column_values:
        raise SerializationError("no columns")
    total = len(column_values[0])
    out = io.BytesIO()
    batches = 0
    for start in range(0, total, batch_rows):
        batch = [col[start : start + batch_rows] for col in column_values]
        encoded = encode_batch(batch)
        out.write(struct.pack("<I", len(encoded)))
        out.write(encoded)
        batches += 1
    return out.getvalue(), batches


def decode_table(raw: bytes) -> list[list[Any]]:
    """Client-side parse of a batch stream back into full columns."""
    stream = io.BytesIO(raw)
    columns: list[list[Any]] | None = None
    while True:
        header = stream.read(4)
        if not header:
            return columns or []
        if len(header) != 4:
            raise SerializationError("truncated batch length prefix")
        (length,) = struct.unpack("<I", header)
        body = stream.read(length)
        if len(body) != length:
            raise SerializationError("truncated batch stream")
        batch = decode_batch(body)
        if columns is None:
            columns = [list(c) for c in batch]
        else:
            for full, part in zip(columns, batch):
                full.extend(part)
