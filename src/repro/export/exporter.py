"""The unified export API: one table out, five ways (Figure 15 + §5).

``TableExporter.export(method)`` runs the full server-side path (real CPU
work: transactional materialization where needed, wire-format conversion
where the protocol demands it), models the network transfer, runs the real
client-side parse, and reports a throughput figure comparable across
methods.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Literal

from repro.errors import SerializationError
from repro.export import flight as flight_mod
from repro.fault.crashpoints import crash_point
from repro.export import postgres_wire, rdma, vectorized
from repro.export.network import NetworkProfile, SimulatedNetwork
from repro.obs import trace
from repro.obs.recorder import broadcast as recorder_broadcast
from repro.obs.registry import DEFAULT_SIZE_BUCKETS, STATE, MetricRegistry

if TYPE_CHECKING:
    from repro.storage.data_table import DataTable
    from repro.txn.manager import TransactionManager

ExportMethod = Literal["postgres", "vectorized", "arrow-wire", "flight", "rdma"]

#: Messages per Flight/RDMA block and rows per row-protocol message are
#: protocol facts the wire model needs.
_VECTORIZED_BATCH_ROWS = vectorized.DEFAULT_BATCH_ROWS


@dataclass
class ExportResult:
    """Timing breakdown of one export run."""

    method: str
    payload_bytes: int
    wire_bytes: int
    serialization_seconds: float
    wire_seconds: float
    client_seconds: float
    rows: int

    @property
    def total_seconds(self) -> float:
        """End-to-end time: server CPU + wire + client CPU."""
        return self.serialization_seconds + self.wire_seconds + self.client_seconds

    @property
    def throughput_mb_per_sec(self) -> float:
        """Payload megabytes per second of end-to-end time."""
        if self.total_seconds == 0:
            return float("inf")
        return self.payload_bytes / 1e6 / self.total_seconds


class TableExporter:
    """Exports one table through any of the five mechanisms."""

    def __init__(
        self,
        txn_manager: "TransactionManager",
        table: "DataTable",
        profile: NetworkProfile | None = None,
        rdma_profile: NetworkProfile | None = None,
        registry: MetricRegistry | None = None,
        pool=None,
    ) -> None:
        """``pool`` (a :class:`repro.parallel.WorkerPool`, e.g.
        ``db.parallel_pool``) parallelizes Flight-path serialization of
        frozen blocks across worker processes; other methods and all hot
        blocks are unaffected."""
        self.txn_manager = txn_manager
        self.table = table
        self.pool = pool
        self.profile = profile or NetworkProfile.TEN_GBE
        self.rdma_profile = rdma_profile or NetworkProfile.RDMA_10_GBE
        if registry is None:
            from repro import obs

            registry = obs.get_registry()
        self.registry = registry

    def export(self, method: ExportMethod) -> ExportResult:
        """Run one export; returns its timing breakdown.

        An export failure never corrupts engine state (exports only read a
        snapshot), but it is counted (``export.failures_total``) and
        re-raised so the serving layer can drop the client cleanly.
        """
        crash_point("export.serialize")
        try:
            with trace.span(f"export.{method}"):
                if method == "postgres":
                    result = self._export_postgres()
                elif method == "vectorized":
                    result = self._export_vectorized()
                elif method == "arrow-wire":
                    result = self._export_arrow_wire()
                elif method == "flight":
                    result = self._export_flight()
                elif method == "rdma":
                    result = self._export_rdma()
                else:
                    raise SerializationError(f"unknown export method {method!r}")
        except Exception as exc:
            self.registry.counter(
                "export.failures_total", "export runs ended by an error"
            ).inc()
            recorder_broadcast(
                "export.failed",
                method=method,
                table=self.table.name,
                error=type(exc).__name__,
            )
            raise
        self._record(result)
        recorder_broadcast(
            "export.serve",
            method=method,
            table=self.table.name,
            rows=result.rows,
            wire_bytes=result.wire_bytes,
            duration_seconds=result.total_seconds,
        )
        return result

    def _record(self, result: ExportResult) -> None:
        """Per-protocol bytes and serialization time into the registry."""
        if not STATE.enabled:
            return
        reg = self.registry
        slug = result.method.replace("-", "_")
        reg.counter("export.exports_total", "export runs, all protocols").inc()
        reg.counter(
            f"export.{slug}_wire_bytes", f"{result.method} bytes put on the wire"
        ).inc(result.wire_bytes)
        reg.counter(
            f"export.{slug}_payload_bytes", f"{result.method} payload bytes exported"
        ).inc(result.payload_bytes)
        reg.histogram(
            f"export.{slug}_serialization_seconds",
            f"{result.method} server-side serialization time",
        ).observe(result.serialization_seconds)
        reg.histogram(
            "export.serialization_seconds",
            "server-side serialization time, all protocols",
        ).observe(result.serialization_seconds)
        reg.histogram(
            "export.wire_bytes_per_run",
            "wire bytes per export run",
            buckets=DEFAULT_SIZE_BUCKETS,
        ).observe(result.wire_bytes)
        reg.gauge(
            "export.last_throughput_mb_per_sec",
            "end-to-end throughput of the most recent export",
        ).set(result.throughput_mb_per_sec)

    # ------------------------------------------------------------------ #
    # method implementations                                              #
    # ------------------------------------------------------------------ #

    def _scan_rows(self) -> list[tuple]:
        """Materialize the table as row tuples through the vectorized scan.

        Frozen blocks stream straight off the Arrow buffers; hot blocks go
        through the block-at-a-time MVCC snapshot — much cheaper than the
        per-tuple ``DataTable.select`` loop the row protocols used to pay."""
        from repro.query.scan import TableScanner

        scanner = TableScanner(self.txn_manager, self.table, registry=self.registry)
        column_ids = list(range(self.table.layout.num_columns))
        rows: list[tuple] = []
        for batch in scanner.batches():
            rows.extend(zip(*(batch.pylist(c) for c in column_ids)))
        return rows

    def _payload_bytes(self, rows: list[tuple]) -> int:
        total = 0
        for row in rows:
            for value in row:
                if value is None:
                    continue
                if isinstance(value, (bytes, str)):
                    total += len(value)
                else:
                    total += 8
        return total

    def _export_postgres(self) -> ExportResult:
        began = time.perf_counter()
        rows = self._scan_rows()
        raw, messages = postgres_wire.encode_rows(rows)
        serialization = time.perf_counter() - began
        network = SimulatedNetwork(self.profile)
        wire = network.transmit(len(raw), messages)
        began = time.perf_counter()
        decoded = postgres_wire.decode_rows(raw)
        client = time.perf_counter() - began
        return ExportResult(
            "postgres", self._payload_bytes(rows), len(raw), serialization, wire,
            client, len(decoded),
        )

    def _export_vectorized(self) -> ExportResult:
        began = time.perf_counter()
        rows = self._scan_rows()
        if rows:
            columns = [list(col) for col in zip(*rows)]
        else:
            columns = [[] for _ in range(self.table.layout.num_columns)]
        raw, batches = vectorized.encode_table(columns) if rows else (b"", 0)
        serialization = time.perf_counter() - began
        network = SimulatedNetwork(self.profile)
        wire = network.transmit(len(raw), batches)
        began = time.perf_counter()
        decoded = vectorized.decode_table(raw) if raw else columns
        client = time.perf_counter() - began
        rows_out = len(decoded[0]) if decoded else 0
        return ExportResult(
            "vectorized", self._payload_bytes(rows), len(raw), serialization, wire,
            client, rows_out,
        )

    def _export_arrow_wire(self) -> ExportResult:
        from repro.export import arrow_wire

        began = time.perf_counter()
        payload = arrow_wire.export_arrow_wire(self.txn_manager, self.table)
        serialization = time.perf_counter() - began
        network = SimulatedNetwork(self.profile)
        batches = max(1, len(payload) // (1 << 16))
        wire = network.transmit(len(payload), batches)
        began = time.perf_counter()
        received = arrow_wire.client_receive(payload)
        client = time.perf_counter() - began
        return ExportResult(
            "arrow-wire", len(payload), len(payload), serialization, wire,
            client, received.num_rows,
        )

    def _export_flight(self) -> ExportResult:
        began = time.perf_counter()
        stream = flight_mod.export_stream(self.txn_manager, self.table, pool=self.pool)
        serialization = time.perf_counter() - began
        network = SimulatedNetwork(self.profile)
        wire = network.transmit(len(stream.payload), max(stream.batches, 1))
        began = time.perf_counter()
        received = flight_mod.client_receive(stream.payload)
        client = time.perf_counter() - began
        return ExportResult(
            "flight", len(stream.payload), len(stream.payload), serialization, wire,
            client, received.num_rows,
        )

    def _export_rdma(self) -> ExportResult:
        began = time.perf_counter()
        transfer = rdma.export_rdma(self.txn_manager, self.table)
        serialization = time.perf_counter() - began  # materialization only
        network = SimulatedNetwork(self.rdma_profile)
        wire = network.transmit(
            int(transfer.effective_bytes),
            transfer.frozen_blocks + transfer.materialized_blocks,
        )
        # The client's CPU is idle during RDMA; data lands ready to use.
        return ExportResult(
            "rdma", transfer.total_bytes, transfer.total_bytes, serialization, wire,
            0.0, -1,
        )
