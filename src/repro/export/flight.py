"""Arrow Flight RPC export (Section 5, "Improved Wire Protocol"++).

Flight transmits Arrow record batches with no per-value serialization: the
batch body *is* the storage buffers.  For FROZEN blocks the server takes a
read lock (the reader counter), wraps the block's buffers zero-copy, and
streams them.  For hot blocks it must start a transaction and materialize a
snapshot first — the cost that makes Flight degrade to the vectorized
protocol when everything is hot (Figure 15).
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.arrowfmt import ipc
from repro.arrowfmt.table import RecordBatch, Table
from repro.obs import trace
from repro.storage.constants import BlockState
from repro.transform.arrow_view import block_to_record_batch, table_schema
from repro.transform.transformer import snapshot_transform

if TYPE_CHECKING:
    from repro.storage.data_table import DataTable
    from repro.txn.manager import TransactionManager


@dataclass
class FlightStream:
    """One encoded Flight response."""

    payload: bytes
    batches: int
    frozen_blocks: int
    materialized_blocks: int


def _write_header(out: io.BytesIO, schema) -> None:
    import json
    import struct

    out.write(ipc.MAGIC)
    header = json.dumps(schema.to_json()).encode("utf-8")
    out.write(struct.pack("<i", len(header)))
    out.write(header)


def export_stream(
    txn_manager: "TransactionManager", table: "DataTable", pool=None
) -> FlightStream:
    """Encode the whole table as an Arrow IPC stream, block by block.

    ``pool`` (a :class:`repro.parallel.WorkerPool`) serializes frozen
    blocks with shared-memory descriptors in worker processes; the encoded
    per-block payloads are stitched back in block order, so the stream is
    byte-identical to the serial one.  Blocks the pool cannot handle
    (hot, dictionary-compressed, fragment lost to a worker crash) are
    encoded in-process.
    """
    out = io.BytesIO()
    schema = table_schema(table.layout)
    _write_header(out, schema)
    frozen = materialized = batches = 0
    if pool is None:
        for block in list(table.blocks):
            batch = _block_batch(txn_manager, table, block)
            if batch is None:
                continue
            if batch.num_rows == 0:
                continue
            was_frozen = block.state is BlockState.FROZEN
            # Dictionary-encoded frozen batches use a different schema; for
            # a homogeneous stream we decode them through the zero-copy view.
            if batch.schema != schema:
                batch = _decode_dictionary_batch(batch, schema)
            ipc.write_batch(out, batch)
            batches += 1
            if was_frozen:
                frozen += 1
            else:
                materialized += 1
        out.write(b"EOS\x00")
        return FlightStream(out.getvalue(), batches, frozen, materialized)

    from repro.parallel.placement import descriptor_if_valid

    blocks = list(table.blocks)
    plan: list[tuple[str, object]] = []  # ("worker", desc) | ("frozen"|"hot", None)
    pinned = []
    try:
        for block in blocks:
            if block.begin_frozen_read():
                pinned.append(block)
                descriptor = descriptor_if_valid(block)
                if descriptor is not None and descriptor.num_rows > 0:
                    plan.append(("worker", descriptor))
                else:
                    plan.append(("frozen", None))
            else:
                plan.append(("hot", None))
        jobs = [
            (i, descriptor)
            for i, (kind, descriptor) in enumerate(plan)
            if kind == "worker"
        ]
        payloads_by_index: dict[int, bytes] = {}
        if jobs:
            workers = max(1, getattr(pool, "num_workers", 1))
            size = max(1, -(-len(jobs) // (2 * workers)))
            fragments = [jobs[i : i + size] for i in range(0, len(jobs), size)]
            with trace.span("export.parallel_dispatch", fragments=len(fragments)):
                answers = pool.run_fragments(
                    "serialize", [([d for _, d in frag],) for frag in fragments]
                )
            for fragment, answer in zip(fragments, answers):
                if answer is None:
                    continue  # fallback: encoded in-process below
                for (block_index, _), result in zip(fragment, answer):
                    payloads_by_index[block_index] = result["payload"]
        for block_index, (kind, _descriptor) in enumerate(plan):
            block = blocks[block_index]
            payload = payloads_by_index.get(block_index)
            if payload is not None:
                out.write(payload)
                batches += 1
                frozen += 1
                continue
            if kind == "hot":
                batch = snapshot_transform(txn_manager, table, block)
                was_frozen = False
            else:
                # Pin still held: in-place view is safe (also the fallback
                # for worker fragments the pool failed to complete).
                batch = block_to_record_batch(block)
                was_frozen = True
            if batch is None or batch.num_rows == 0:
                continue
            if batch.schema != schema:
                batch = _decode_dictionary_batch(batch, schema)
            ipc.write_batch(out, batch)
            batches += 1
            if was_frozen:
                frozen += 1
            else:
                materialized += 1
    finally:
        for block in pinned:
            block.end_frozen_read()
    out.write(b"EOS\x00")
    return FlightStream(out.getvalue(), batches, frozen, materialized)


def _block_batch(txn_manager, table, block) -> RecordBatch | None:
    if block.begin_frozen_read():
        try:
            return block_to_record_batch(block)
        finally:
            block.end_frozen_read()
    # Hot (or cooling/freezing) block: materialize transactionally.
    return snapshot_transform(txn_manager, table, block)


def _decode_dictionary_batch(batch: RecordBatch, schema) -> RecordBatch:
    from repro.arrowfmt.array import DictionaryArray
    from repro.arrowfmt.builder import VarBinaryBuilder

    columns = []
    for field, column in zip(schema, batch.columns):
        if isinstance(column, DictionaryArray):
            builder = VarBinaryBuilder(field.dtype)
            builder.extend(column.to_pylist())
            columns.append(builder.finish())
        else:
            columns.append(column)
    return RecordBatch(schema, columns)


def client_receive(payload: bytes) -> Table:
    """The client side: land the stream as Arrow with zero value parsing."""
    return ipc.read_table(payload)


@dataclass
class IncrementalStream:
    """One delta export: payload + the cursor for the next call."""

    payload: bytes
    cursor: int
    frozen_blocks_shipped: int
    hot_blocks_shipped: int
    blocks_skipped: int


def incremental_export(
    txn_manager: "TransactionManager",
    table: "DataTable",
    since: int = 0,
) -> IncrementalStream:
    """Ship only what changed since the last export — ETL without the E.

    Frozen blocks whose ``frozen_at`` stamp predates ``since`` are skipped
    (the previous export already carried them, and FROZEN means unmodified
    since).  Blocks frozen later, and all currently-hot blocks (their
    contents may have changed), are shipped.  Feed the returned ``cursor``
    into the next call.

    This replaces the nightly ETL job the paper's introduction criticizes:
    repeated exports cost O(changed data), not O(database).
    """
    out = io.BytesIO()
    schema = table_schema(table.layout)
    _write_header(out, schema)
    cursor = txn_manager.timestamps.checkpoint()
    frozen = hot = skipped = 0
    for block in list(table.blocks):
        if block.state is BlockState.FROZEN and block.frozen_at <= since:
            skipped += 1
            continue
        batch = _block_batch(txn_manager, table, block)
        if batch is None or batch.num_rows == 0:
            continue
        was_frozen = block.state is BlockState.FROZEN
        if batch.schema != schema:
            batch = _decode_dictionary_batch(batch, schema)
        ipc.write_batch(out, batch)
        if was_frozen:
            frozen += 1
        else:
            hot += 1
    out.write(b"EOS\x00")
    return IncrementalStream(out.getvalue(), cursor, frozen, hot, skipped)
