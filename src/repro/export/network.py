"""A bandwidth/latency network model.

The evaluation machines in Section 6.3 use dual-port Mellanox ConnectX-3
10 GbE NICs; :data:`NetworkProfile.TEN_GBE` models that link.  Wire time is
``bytes / bandwidth + messages * latency`` — enough to reproduce who wins
and by what factor, which is what Figure 15 is about.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SerializationError


@dataclass(frozen=True)
class NetworkProfile:
    """Link characteristics used by the simulator."""

    name: str
    bandwidth_bytes_per_sec: float
    latency_sec_per_message: float

    #: 10 GbE over TCP: ~1.25 GB/s, tens of microseconds per message.
    TEN_GBE: "NetworkProfile" = None  # type: ignore[assignment]
    #: RDMA over the same NIC: kernel bypass removes most per-message cost.
    RDMA_10_GBE: "NetworkProfile" = None  # type: ignore[assignment]
    #: Loopback (the Figure 1 setting: client on the same machine).
    LOOPBACK: "NetworkProfile" = None  # type: ignore[assignment]


NetworkProfile.TEN_GBE = NetworkProfile("10gbe-tcp", 1.25e9, 40e-6)
NetworkProfile.RDMA_10_GBE = NetworkProfile("10gbe-rdma", 1.25e9, 2e-6)
NetworkProfile.LOOPBACK = NetworkProfile("loopback", 6.0e9, 5e-6)


class SimulatedNetwork:
    """Accumulates modeled transmission time over a profile."""

    def __init__(self, profile: NetworkProfile = NetworkProfile.TEN_GBE) -> None:
        self.profile = profile
        self.bytes_sent = 0
        self.messages_sent = 0
        self.wire_seconds = 0.0

    def transmit(self, nbytes: int, messages: int = 1) -> float:
        """Model sending ``nbytes`` across ``messages`` messages; returns
        the seconds this transfer takes on the wire."""
        if nbytes < 0 or messages < 0:
            raise SerializationError("negative transfer size")
        seconds = (
            nbytes / self.profile.bandwidth_bytes_per_sec
            + messages * self.profile.latency_sec_per_message
        )
        self.bytes_sent += nbytes
        self.messages_sent += messages
        self.wire_seconds += seconds
        return seconds

    def reset(self) -> None:
        """Zero the accumulated counters."""
        self.bytes_sent = 0
        self.messages_sent = 0
        self.wire_seconds = 0.0
