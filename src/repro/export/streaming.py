"""Pipelined client-side RDMA with partial-availability messages (Section 5).

"The DBMS can send messages for partial availability of data periodically
to communicate whether it has already written some given chunk of data.
[...] the client can start working on partially available data,
effectively pipelining data processing."

The server pushes blocks one at a time; after each block lands in the
client's memory a small availability message follows, and the client
processes that chunk while the next transfer is in flight.  End-to-end
latency is therefore ``max(transfer, client work)`` per chunk instead of
their sum — the pipelining win this module measures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator

from repro.export.network import NetworkProfile, SimulatedNetwork
from repro.transform.arrow_view import block_to_record_batch
from repro.transform.transformer import snapshot_transform

if TYPE_CHECKING:
    from repro.arrowfmt.table import RecordBatch
    from repro.storage.data_table import DataTable
    from repro.txn.manager import TransactionManager

#: Bytes of one partial-availability notification message.
AVAILABILITY_MESSAGE_BYTES = 64


@dataclass
class ChunkEvent:
    """One chunk landing in the client's memory."""

    index: int
    rows: int
    nbytes: int
    transfer_seconds: float
    available_at: float  # pipeline clock when the client may start reading


@dataclass
class PipelineResult:
    """Timing of a pipelined export."""

    chunks: list[ChunkEvent] = field(default_factory=list)
    total_rows: int = 0
    total_bytes: int = 0
    #: When the last transfer finished (server-side done).
    transfer_done_at: float = 0.0
    #: When the client finished processing the last chunk.
    client_done_at: float = 0.0
    #: What the same work would cost without overlap.
    unpipelined_seconds: float = 0.0

    @property
    def pipelining_speedup(self) -> float:
        """Unpipelined time over pipelined time (≥ 1 when overlap helps)."""
        if self.client_done_at == 0:
            return 1.0
        return self.unpipelined_seconds / self.client_done_at


def stream_blocks(
    txn_manager: "TransactionManager", table: "DataTable"
) -> "Iterator[RecordBatch]":
    """Yield one record batch per block (zero-copy when frozen)."""
    for block in list(table.blocks):
        if block.begin_frozen_read():
            try:
                batch = block_to_record_batch(block)
            finally:
                block.end_frozen_read()
        else:
            batch = snapshot_transform(txn_manager, table, block)
        if batch.num_rows:
            yield batch


def pipelined_rdma_export(
    txn_manager: "TransactionManager",
    table: "DataTable",
    client_work: Callable[["RecordBatch"], None],
    profile: NetworkProfile | None = None,
) -> PipelineResult:
    """Export with per-chunk availability messages and overlapped client work.

    ``client_work`` runs for real (its duration is measured); transfers are
    modeled on ``profile``.  The pipeline clock advances as
    ``available_at[i] = max(prev transfer end) + transfer[i]`` for the wire
    and the client consumes chunk *i* no earlier than it is available and
    no earlier than it finished chunk *i - 1*.
    """
    network = SimulatedNetwork(profile or NetworkProfile.RDMA_10_GBE)
    result = PipelineResult()
    wire_clock = 0.0
    client_clock = 0.0
    for index, batch in enumerate(stream_blocks(txn_manager, table)):
        nbytes = batch.nbytes()
        transfer = network.transmit(nbytes, 1)
        # The availability notification rides behind the chunk.
        transfer += network.transmit(AVAILABILITY_MESSAGE_BYTES, 1)
        wire_clock += transfer
        began = time.perf_counter()
        client_work(batch)
        work_seconds = time.perf_counter() - began
        start = max(wire_clock, client_clock)
        client_clock = start + work_seconds
        result.chunks.append(
            ChunkEvent(index, batch.num_rows, nbytes, transfer, wire_clock)
        )
        result.total_rows += batch.num_rows
        result.total_bytes += nbytes
        result.unpipelined_seconds += transfer + work_seconds
    result.transfer_done_at = wire_clock
    result.client_done_at = client_clock
    return result
