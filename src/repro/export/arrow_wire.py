"""Arrow as a drop-in *wire protocol* over a conventional row engine.

Section 5's first option ("Improved Wire Protocol") and the closing point
of Section 6.3: adopting Arrow as the wire format helps — columnar batches
beat rows — but if the DBMS does not *store* data in Arrow it must still
serialize every value into the format, and that conversion dominates.
This module implements exactly that path: scan tuples transactionally,
build Arrow arrays value by value, and ship the IPC stream.  Comparing it
against the native Flight path isolates the benefit of Arrow-native
storage from the benefit of an Arrow wire format.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.arrowfmt import ipc
from repro.arrowfmt.table import Table
from repro.transform.arrow_view import rows_to_record_batch, table_schema

if TYPE_CHECKING:
    from repro.storage.data_table import DataTable
    from repro.txn.manager import TransactionManager

#: Rows per record batch on the wire.
BATCH_ROWS = 4096


def export_arrow_wire(
    txn_manager: "TransactionManager", table: "DataTable"
) -> bytes:
    """Serialize the whole table into Arrow IPC *by value*.

    Every tuple is materialized through the Data Table API and appended to
    builders — the work a row-store DBMS adopting Arrow-on-the-wire would
    do, regardless of block temperature.
    """
    txn = txn_manager.begin()
    rows = [row.to_dict() for _, row in table.scan(txn)]
    txn_manager.commit(txn)
    schema = table_schema(table.layout)
    batches = [
        rows_to_record_batch(table.layout, rows[start : start + BATCH_ROWS])
        for start in range(0, len(rows), BATCH_ROWS)
    ]
    return ipc.write_table(Table(schema, batches))


def client_receive(payload: bytes) -> Table:
    """Client side: identical to Flight's (the format is the same Arrow)."""
    return ipc.read_table(payload)
