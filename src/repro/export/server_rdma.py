"""Server-side RDMA: clients read the DBMS's memory under leases (Section 5).

The paper sketches — without building — the hard variant of RDMA export:
the *client* reads the server's block memory directly, bypassing the DBMS
CPU entirely.  The two challenges it names are implemented here:

1. **Access control without a CPU in the loop**: the DBMS "has to implement
   some form of a lease system to invalidate readers" — a write to a leased
   block must wait until the lease expires (bounded staleness) instead of a
   round trip to the client.  :class:`LeaseManager` grants time-bounded
   read leases on FROZEN blocks and makes writers wait out unexpired
   leases before reheating a block.
2. **Address discovery**: the client "knows beforehand the address of the
   blocks it needs" via a directory RPC — :meth:`RdmaDirectory.describe`
   returns block ids, byte sizes, and lease grants.

Time is injectable (a callable clock) so tests drive lease expiry
deterministically.

Like :mod:`repro.export.flight_server`, this is a codec/protocol layer,
not a network server; the socket-facing entry point for exports is the
transactional front door (``python -m repro.service serve``, operation
``export``), which layers admission control and graceful drain on top of
these same mechanisms.
"""

from __future__ import annotations

import threading
import time as _time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.errors import StorageError
from repro.storage.constants import BlockState
from repro.transform.arrow_view import block_to_record_batch

if TYPE_CHECKING:
    from repro.storage.block import RawBlock
    from repro.storage.data_table import DataTable

#: Default lease duration in (simulated) seconds.
DEFAULT_LEASE_SECONDS = 0.05


@dataclass(frozen=True)
class Lease:
    """A time-bounded grant to read one frozen block remotely."""

    block_id: int
    expires_at: float
    nbytes: int


class LeaseManager:
    """Grants and enforces read leases on frozen blocks.

    Writers call :meth:`wait_for_block` before reheating; the call blocks
    until every unexpired lease on the block has run out — the bounded
    write-latency cost the paper predicts for server-side RDMA.
    """

    def __init__(
        self,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.lease_seconds = lease_seconds
        self.clock = clock or _time.monotonic
        self._lock = threading.Lock()
        self._leases: dict[int, float] = {}  # block id -> latest expiry
        self.grants = 0
        self.writer_waits = 0

    def grant(self, block: "RawBlock") -> Lease:
        """Lease a FROZEN block for reading; raises if the block is hot."""
        if block.state is not BlockState.FROZEN:
            raise StorageError(
                f"cannot lease block {block.block_id} in state {block.state.name}"
            )
        expires = self.clock() + self.lease_seconds
        with self._lock:
            self._leases[block.block_id] = max(
                self._leases.get(block.block_id, 0.0), expires
            )
            self.grants += 1
        batch = None  # size without materializing values
        nbytes = block.layout.used_bytes
        return Lease(block.block_id, expires, nbytes)

    def lease_remaining(self, block_id: int) -> float:
        """Seconds until the last lease on ``block_id`` expires (≤ 0 = none)."""
        with self._lock:
            return self._leases.get(block_id, 0.0) - self.clock()

    def wait_for_block(self, block_id: int, poll: float = 0.001) -> float:
        """Block the caller until no unexpired lease remains.

        Returns the seconds waited (0.0 when the block was unleased).
        """
        waited = 0.0
        remaining = self.lease_remaining(block_id)
        if remaining > 0:
            with self._lock:
                self.writer_waits += 1
        while remaining > 0:
            if self.clock is _time.monotonic:
                _time.sleep(min(poll, remaining))
            waited += remaining if self.clock is not _time.monotonic else 0.0
            if self.clock is not _time.monotonic:
                # Injected clocks advance externally; bail out to caller.
                break
            remaining = self.lease_remaining(block_id)
        return waited


class RdmaDirectory:
    """The discovery RPC: block addresses + lease grants for one table."""

    def __init__(self, table: "DataTable", leases: LeaseManager) -> None:
        self.table = table
        self.leases = leases

    def describe(self) -> list[Lease]:
        """Lease every currently-frozen block and return the grants.

        Hot blocks are *not* advertised: server-side RDMA has no way to
        materialize for the client, so the client must fall back to another
        mechanism for them (the paper's hybrid reality).
        """
        grants = []
        for block in list(self.table.blocks):
            if block.state is BlockState.FROZEN:
                grants.append(self.leases.grant(block))
        return grants

    def read_block(self, block_id: int):
        """What the NIC would DMA: the block's Arrow view, CPU untouched.

        Reading requires an unexpired lease; a stale client is refused
        (its lease lapsed and the block may have been reheated).
        """
        if self.leases.lease_remaining(block_id) <= 0:
            raise StorageError(f"lease on block {block_id} expired")
        block = self.table._block(block_id)
        if block.state is not BlockState.FROZEN:
            raise StorageError(
                f"block {block_id} was reheated despite an active lease"
            )
        return block_to_record_batch(block)


def guarded_touch_hot(
    block: "RawBlock", leases: LeaseManager
) -> float:
    """The writer-side protocol: wait out leases, then reheat.

    Returns seconds spent waiting on leases — the write-latency tax of
    server-side RDMA that Section 5 warns about.
    """
    waited = leases.wait_for_block(block.block_id)
    block.touch_hot()
    return waited
