"""Cluster crash torture: seeded schedules against a sharded engine.

The single-node harness (:mod:`repro.fault.harness`) proves one WAL
recovers a prefix of the commit order.  This harness proves the stronger
cluster property: across N independent WALs plus a coordinator decision
log, *no schedule may commit a transaction on one shard and abort it on
another*.  One :func:`run_cluster_schedule` call is one cluster lifetime:

1. Build a :class:`~repro.cluster.ShardedDatabase` whose shard WALs and
   coordinator log are :class:`~repro.fault.device.FaultyDevice` wrappers,
   then run a workload mixing single-shard and cross-shard (2PC)
   transactions while tracking, per transaction, exactly which rows it
   wrote on which shards and whether its durability ack fired.
2. Die at a seeded fault — a crash point inside the 2PC protocol
   (``coordinator.prepare`` / ``coordinator.decide`` / ``participant.ack``),
   a crash point inside any shard's WAL flush, or a device fault on one
   chosen shard log or the coordinator log.
3. "Reboot": take every device's crash image (fsynced prefix plus a seeded
   torn tail, drawn independently per device — the disks did not fail in
   sympathy), replay them into a fresh cluster with presumed-abort
   in-doubt resolution, and check the invariants.

Invariants checked, in increasing strength:

- **per-shard prefix**: on each shard, the recovered transactions are a
  prefix of that shard's commit order (the single-node guarantee);
- **durability**: every acked transaction is fully recovered;
- **no resurrection**: a transaction aborted by 2PC is recovered nowhere;
- **cross-shard atomicity**: every transaction — committed, aborted, or
  in flight at the crash — is either recovered on *all* shards it wrote
  or on *none* of them;
- **exact state**: each shard's recovered rows equal the effects of
  exactly the recovered transaction set, in order.

``tpcc`` mode runs the same lifecycle over TPC-C sharded by home
warehouse (``TPCC_SHARD_KEYS``) at ``warehouses = n_shards``, where
remote payments and remote new-order lines make real cross-shard 2PC
traffic, and additionally requires the spec's consistency conditions
(clause 3.3.2) to hold on every shard after recovery.

Everything derives from one integer seed; a red run reproduces from its
report alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.fault.crashpoints import CrashPointInjector, armed
from repro.fault.device import FaultSchedule, FaultSpec, FaultyDevice, SimulatedCrash

#: Crash sites a cluster schedule can draw.  The first three live inside
#: the 2PC protocol itself; the device sites fault one chosen shard WAL
#: or the coordinator log; the WAL-flush sites fire in whichever shard
#: flushes next.
CLUSTER_CRASH_SITES = (
    "coordinator.prepare",
    "coordinator.decide",
    "participant.ack",
    "device.torn_write",
    "device.crash_fsync",
    "coordinator.io_error",
    "wal.flush.pre_fsync",
    "wal.flush.post_fsync",
)

_INJECTOR_SITES = frozenset(
    {
        "coordinator.prepare",
        "coordinator.decide",
        "participant.ack",
        "wal.flush.pre_fsync",
        "wal.flush.post_fsync",
    }
)


@dataclass
class ClusterScheduleReport:
    """Outcome of one seeded cluster schedule; ``ok`` is the verdict."""

    seed: int
    mode: str  # "kv" | "tpcc"
    n_shards: int
    crash_site: str | None
    fault_target: str | None
    crashed: bool
    txns_committed: int
    txns_cross_shard: int
    txns_acked: int
    txns_recovered: int
    in_doubt: int
    resolved_commit: int
    resolved_abort: int
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def __str__(self) -> str:
        verdict = "ok" if self.ok else "FAIL " + "; ".join(self.violations)
        return (
            f"seed={self.seed:>5} mode={self.mode:<5} shards={self.n_shards} "
            f"site={self.crash_site or '-':<22} "
            f"target={self.fault_target or '-':<11} crashed={int(self.crashed)} "
            f"committed={self.txns_committed:>3} cross={self.txns_cross_shard:>3} "
            f"acked={self.txns_acked:>3} recovered={self.txns_recovered:>3} "
            f"indoubt={self.in_doubt}({self.resolved_commit}c/{self.resolved_abort}a) "
            f"{verdict}"
        )


# ---------------------------------------------------------------------- #
# schedule construction                                                   #
# ---------------------------------------------------------------------- #


def _pick_cluster_plan(rng: random.Random, n_shards: int, txns: int) -> dict:
    """Everything a cluster schedule decides, drawn from the seed's RNG."""
    plan = {
        "flush_every": rng.randrange(1, 5),
        "maintenance_every": rng.randrange(5, 13),
        "block_size": rng.choice((1 << 12, 1 << 13)),
        #: Fraction of workload transactions that deliberately span shards.
        "cross_rate": 0.3 + rng.random() * 0.4,
        "crash_site": None,
        "crash_skip": 0,
        "device_specs": [],
        #: ``"shard:<i>"`` or ``"coordinator"`` for device sites.
        "fault_target": None,
    }
    site = CLUSTER_CRASH_SITES[rng.randrange(len(CLUSTER_CRASH_SITES))]
    plan["crash_site"] = site
    targets = [f"shard:{i}" for i in range(n_shards)] + ["coordinator"]
    if site == "device.torn_write":
        plan["device_specs"] = [
            FaultSpec("write", rng.randrange(2, 2 * txns), "torn_write")
        ]
        plan["fault_target"] = targets[rng.randrange(len(targets))]
    elif site == "device.crash_fsync":
        plan["device_specs"] = [FaultSpec("fsync", rng.randrange(1, txns + 1), "crash")]
        plan["fault_target"] = targets[rng.randrange(len(targets))]
    elif site == "coordinator.io_error":
        # A recoverable write error on the decision log: log_decision must
        # rewind the partial record and fall back to a clean abort, so the
        # run continues and ends clean.
        plan["device_specs"] = [
            FaultSpec("write", rng.randrange(1, max(txns // 3, 2)), "io_error")
        ]
        plan["fault_target"] = "coordinator"
    else:
        plan["crash_skip"] = rng.randrange(0, max(3, txns // 2))
    return plan


def _make_injector(plan: dict) -> CrashPointInjector:
    site = plan["crash_site"]
    if site in _INJECTOR_SITES:
        return CrashPointInjector(site, skip=plan["crash_skip"])
    return CrashPointInjector("<never>")


# ---------------------------------------------------------------------- #
# the KV workload: exact per-shard effect tracking                        #
# ---------------------------------------------------------------------- #


@dataclass
class _ClusterTxn:
    """One workload transaction's footprint, for post-crash verification."""

    index: int
    shards: tuple[int, ...]
    #: Shard id → the sentinel row id inserted there (routes to that shard).
    sentinels: dict[int, int] = field(default_factory=dict)
    #: Shard id → [(op, row id, payload, seq)] in execution order.
    ops: dict[int, list[tuple[str, int, str | None, int | None]]] = field(
        default_factory=dict
    )
    #: Sentinel id → ShardSlot, merged into the victim pool on commit.
    slot_map: dict[int, Any] = field(default_factory=dict)
    outcome: str = "pending"  # "committed" | "aborted" | "in_doubt" | "pending"
    acked: bool = False
    #: Shard id → recovered?, filled by verification.
    present: dict[int, bool] = field(default_factory=dict)

    @property
    def cross_shard(self) -> bool:
        return len(self.shards) > 1


def _build_kv_cluster(n_shards: int, block_size: int, **kwargs: Any):
    from repro import INT64, UTF8, ColumnSpec
    from repro.cluster import ShardedDatabase

    cluster = ShardedDatabase(n_shards=n_shards, cold_threshold_epochs=1, **kwargs)
    cluster.create_table(
        "kv",
        [ColumnSpec("id", INT64), ColumnSpec("payload", UTF8), ColumnSpec("seq", INT64)],
        block_size=block_size,
        shard_key="id",
    )
    return cluster


def _kv_cluster_txn(
    cluster,
    rng: random.Random,
    plan: dict,
    index: int,
    next_row: int,
    slots: dict[int, Any],
    records: list[_ClusterTxn],
) -> tuple[_ClusterTxn, int]:
    """Build and run one workload transaction; returns its record.

    Every transaction inserts one fresh *sentinel* row on each shard it
    touches — ids are constructed as ``row * n + shard`` so the integer
    router places them deterministically — and may additionally update
    previously committed rows on those same shards.  Sentinels double as
    the presence oracle after recovery, so they are never deleted.
    """
    n = cluster.n_shards
    if n > 1 and rng.random() < plan["cross_rate"]:
        k = rng.randrange(2, min(3, n) + 1)
    else:
        k = 1
    shards = tuple(sorted(rng.sample(range(n), k)))
    rec = _ClusterTxn(index=index, shards=shards)
    # Registered before any engine call: a SimulatedCrash mid-commit must
    # still leave the in-flight transaction visible to verification (its
    # effects may legitimately be recovered — e.g. a decision forced just
    # before the crash).
    records.append(rec)

    from repro.errors import (
        CoordinationAbort,
        DegradedError,
        TransactionAborted,
        TwoPhaseInDoubt,
    )
    from repro.txn.context import TxnState

    table = cluster.catalog.table("kv")
    dtxn = cluster.begin()
    try:
        for s in shards:
            row_id = next_row * n + s
            next_row += 1
            payload = f"v{index}-" + "x" * rng.randrange(0, 30)
            rec.slot_map[row_id] = table.insert(
                dtxn, {0: row_id, 1: payload, 2: index}
            )
            rec.sentinels[s] = row_id
            rec.ops.setdefault(s, []).append(("insert", row_id, payload, index))
        shard_set = set(shards)
        victims = [rid for rid in slots if rid % n in shard_set]
        if victims and rng.random() < 0.45:
            victim = victims[rng.randrange(len(victims))]
            update_payload = f"u{index}-" + "y" * rng.randrange(0, 15)
            if table.update(dtxn, slots[victim], {1: update_payload, 2: index}):
                rec.ops.setdefault(victim % n, []).append(
                    ("update", victim, update_payload, index)
                )

        def _on_durable(rec=rec, dtxn=dtxn) -> None:
            if dtxn.state is TxnState.COMMITTED:
                rec.acked = True

        dtxn.on_durable(_on_durable)
        cluster.commit(dtxn)
        rec.outcome = "committed"
        slots.update(rec.slot_map)
    except TwoPhaseInDoubt:
        rec.outcome = "in_doubt"
    except DegradedError:
        rec.outcome = "aborted"
    except (CoordinationAbort, TransactionAborted):
        rec.outcome = "aborted"
    return rec, next_row


def run_cluster_schedule(
    seed: int, mode: str = "kv", txns: int = 40, n_shards: int | None = None
) -> ClusterScheduleReport:
    """Run one seeded cluster lifetime; returns its report."""
    if mode == "tpcc":
        return _run_cluster_tpcc_schedule(
            seed, txns=txns, n_shards=n_shards or (2 if seed % 2 == 0 else 4)
        )
    rng = random.Random(seed)
    n = n_shards or rng.choice((2, 3, 4))
    plan = _pick_cluster_plan(rng, n, txns)

    def specs_for(target: str) -> list[FaultSpec]:
        return plan["device_specs"] if plan["fault_target"] == target else []

    shard_devices = [
        FaultyDevice(schedule=FaultSchedule(specs_for(f"shard:{i}"), seed=seed + i))
        for i in range(n)
    ]
    coord_device = FaultyDevice(
        schedule=FaultSchedule(specs_for("coordinator"), seed=seed + n)
    )
    cluster = _build_kv_cluster(
        n,
        plan["block_size"],
        log_devices=shard_devices,
        coordinator_device=coord_device,
    )
    for shard in cluster.shards:
        shard.log_manager.synchronous = False

    records: list[_ClusterTxn] = []
    slots: dict[int, Any] = {}
    next_row = 0
    crashed = False
    with armed(_make_injector(plan)):
        try:
            for i in range(txns):
                rec, next_row = _kv_cluster_txn(
                    cluster, rng, plan, i, next_row, slots, records
                )
                if rec.outcome == "in_doubt":
                    break  # the coordinator log is poisoned; stop writing
                if (i + 1) % plan["flush_every"] == 0:
                    cluster.flush_all()
                if (i + 1) % plan["maintenance_every"] == 0:
                    cluster.run_maintenance()
            cluster.flush_all()
        except SimulatedCrash:
            crashed = True
        except OSError:
            crashed = True

    images = [
        d.crash_image(rng) if crashed else d.durable_image() for d in shard_devices
    ]
    coord_image = (
        coord_device.crash_image(rng) if crashed else coord_device.durable_image()
    )
    return _verify_cluster_kv(
        seed, n, plan, crashed, records, images, coord_image
    )


def _verify_cluster_kv(
    seed: int,
    n: int,
    plan: dict,
    crashed: bool,
    records: list[_ClusterTxn],
    images: list[bytes],
    coord_image: bytes,
) -> ClusterScheduleReport:
    violations: list[str] = []
    stats = {"transactions_replayed": 0, "in_doubt": 0, "resolved_commit": 0,
             "resolved_abort": 0}
    fresh = _build_kv_cluster(n, plan["block_size"])
    try:
        stats = fresh.recover_from(images, coord_image, tolerate_torn_tail=True)
    except Exception as exc:
        violations.append(f"cluster recovery raised {exc!r}")

    actual: list[dict[int, tuple[str, int]]] = []
    if not violations:
        for shard in fresh.shards:
            reader = shard.begin()
            actual.append(
                {
                    row.get(0): (row.get(1), row.get(2))
                    for _, row in shard.catalog.table("kv").scan(reader)
                }
            )
            shard.commit(reader)

        for rec in records:
            rec.present = {
                s: sentinel in actual[s] for s, sentinel in rec.sentinels.items()
            }
            # THE cluster invariant: all-or-nothing across shards, for
            # every transaction regardless of how its lifetime ended.
            if len(set(rec.present.values())) > 1:
                violations.append(
                    f"txn {rec.index} atomicity violated across shards: "
                    f"{rec.present} (outcome={rec.outcome})"
                )
            recovered = all(rec.present.values())
            if rec.outcome == "aborted" and recovered:
                violations.append(f"aborted txn {rec.index} resurrected by recovery")
            if rec.acked and not recovered:
                violations.append(f"acked txn {rec.index} lost by recovery")
            if rec.outcome == "committed" and not crashed and not recovered:
                violations.append(
                    f"clean shutdown lost committed txn {rec.index}"
                )

    if not violations:
        # Per-shard prefix: once a committed transaction is missing on a
        # shard, no later committed transaction may be present there.
        for s in range(n):
            lost_from: int | None = None
            for rec in records:
                if s not in rec.shards or rec.outcome != "committed":
                    continue
                if not rec.present[s]:
                    if lost_from is None:
                        lost_from = rec.index
                elif lost_from is not None:
                    violations.append(
                        f"shard {s}: txn {rec.index} recovered after "
                        f"txn {lost_from} was lost (not a prefix)"
                    )
                    break

        # Exact state: each shard's rows are the effects of exactly the
        # recovered transactions, applied in commit order.
        for s in range(n):
            expected: dict[int, tuple[str, int]] = {}
            for rec in records:
                if not rec.present.get(s):
                    continue
                for op, row_id, payload, seq in rec.ops.get(s, ()):
                    if op == "delete":
                        expected.pop(row_id, None)
                    else:
                        expected[row_id] = (payload, seq)  # type: ignore[assignment]
            if expected != actual[s]:
                extra = sorted(set(actual[s]) - set(expected))
                lost = sorted(set(expected) - set(actual[s]))
                violations.append(
                    f"shard {s} state diverges: extra={extra[:5]} lost={lost[:5]}"
                )

    committed = [r for r in records if r.outcome == "committed"]
    return ClusterScheduleReport(
        seed=seed,
        mode="kv",
        n_shards=n,
        crash_site=plan["crash_site"],
        fault_target=plan["fault_target"],
        crashed=crashed,
        txns_committed=len(committed),
        txns_cross_shard=sum(1 for r in committed if r.cross_shard),
        txns_acked=sum(1 for r in records if r.acked),
        txns_recovered=stats["transactions_replayed"],
        in_doubt=stats["in_doubt"],
        resolved_commit=stats["resolved_commit"],
        resolved_abort=stats["resolved_abort"],
        violations=violations,
    )


# ---------------------------------------------------------------------- #
# the TPC-C lifetime                                                      #
# ---------------------------------------------------------------------- #


def _cluster_tpcc_config(n_shards: int):
    from repro.workloads.tpcc.schema import TpccConfig

    return TpccConfig(
        warehouses=n_shards,
        districts_per_warehouse=2,
        customers_per_district=12,
        items=40,
        initial_orders_per_district=8,
        stock_per_warehouse=40,
        block_size=1 << 12,
    )


def _run_cluster_tpcc_schedule(
    seed: int, txns: int = 25, n_shards: int = 2
) -> ClusterScheduleReport:
    """One TPC-C cluster lifetime: load sharded by home warehouse, run the
    mix (remote payments / new-order lines are cross-shard 2PC), crash,
    recover, and check clause 3.3.2 consistency on every shard."""
    from repro.cluster import ShardedDatabase
    from repro.errors import DegradedError, TwoPhaseInDoubt
    from repro.wal.records import decode_stream
    from repro.workloads.tpcc.consistency import check_consistency
    from repro.workloads.tpcc.driver import MIX, TpccDriver
    from repro.workloads.tpcc.schema import TPCC_SHARD_KEYS, create_tpcc_tables
    from repro.workloads.tpcc.transactions import TpccTransactions

    rng = random.Random(seed)
    plan = _pick_cluster_plan(rng, n_shards, txns)
    config = _cluster_tpcc_config(n_shards)
    cluster = ShardedDatabase(
        n_shards=n_shards, shard_keys=TPCC_SHARD_KEYS, cold_threshold_epochs=1
    )
    driver = TpccDriver(cluster, config=config, seed=seed)
    driver.setup()  # synchronous clean devices: the load is fully durable
    cluster.flush_all()

    # Swap the (now fully synced) clean devices for faulty wrappers so the
    # schedule's op indices count from the start of the measured mix.
    def wrap(base, specs, salt: int) -> FaultyDevice:
        device = FaultyDevice(base=base, schedule=FaultSchedule(specs, seed=seed + salt))
        device.synced_len = device.base.tell()
        return device

    shard_devices = []
    for i, shard in enumerate(cluster.shards):
        specs = plan["device_specs"] if plan["fault_target"] == f"shard:{i}" else []
        shard.log_manager.device = wrap(shard.log_manager.device, specs, i)
        shard.log_manager.synchronous = False
        shard_devices.append(shard.log_manager.device)
    cspecs = plan["device_specs"] if plan["fault_target"] == "coordinator" else []
    coord_device = wrap(cluster.coordinator_log.device, cspecs, n_shards)
    cluster.coordinator_log.device = coord_device
    base_recovered = sum(
        len(decode_stream(d.durable_image(), tolerate_torn_tail=True))
        for d in shard_devices
    )

    executor = TpccTransactions(cluster, config, seed=seed + 1000)
    cross_before = int(cluster.obs.counter("cluster.txn_cross_shard_total").value)
    crashed = False
    with armed(_make_injector(plan)):
        try:
            for i in range(txns):
                pick = executor.rand.random()
                for profile, threshold in MIX:
                    if pick <= threshold:
                        getattr(executor, profile)(None)
                        break
                if (i + 1) % plan["flush_every"] == 0:
                    cluster.flush_all()
                if (i + 1) % plan["maintenance_every"] == 0:
                    cluster.run_maintenance()
            cluster.flush_all()
        except SimulatedCrash:
            crashed = True
        except OSError:
            crashed = True
        except (TwoPhaseInDoubt, DegradedError):
            # The cluster is impaired but alive; stop the mix and verify
            # that recovery resolves whatever was left prepared.
            crashed = True

    images = [
        d.crash_image(rng) if crashed else d.durable_image() for d in shard_devices
    ]
    coord_image = (
        coord_device.crash_image(rng) if crashed else coord_device.durable_image()
    )

    violations: list[str] = []
    stats = {"transactions_replayed": 0, "in_doubt": 0, "resolved_commit": 0,
             "resolved_abort": 0}
    fresh = ShardedDatabase(
        n_shards=n_shards, shard_keys=TPCC_SHARD_KEYS, cold_threshold_epochs=1
    )
    create_tpcc_tables(fresh, config)
    try:
        stats = fresh.recover_from(images, coord_image, tolerate_torn_tail=True)
    except Exception as exc:
        violations.append(f"TPC-C cluster recovery raised {exc!r}")
    else:
        if stats["transactions_replayed"] < base_recovered:
            violations.append(
                f"recovery lost the durable load: "
                f"{stats['transactions_replayed']} < {base_recovered}"
            )
        mix_recovered = stats["transactions_replayed"] - base_recovered
        if mix_recovered < executor.acked_writes:
            violations.append(
                f"acked mix transactions lost: recovered {mix_recovered} "
                f"of {executor.acked_writes} acked"
            )
        for i, shard in enumerate(fresh.shards):
            for violation in check_consistency(shard).violations:
                violations.append(f"shard {i} consistency: {violation}")
        for violation in check_consistency(fresh).violations:
            violations.append(f"cluster consistency: {violation}")

    return ClusterScheduleReport(
        seed=seed,
        mode="tpcc",
        n_shards=n_shards,
        crash_site=plan["crash_site"],
        fault_target=plan["fault_target"],
        crashed=crashed,
        txns_committed=executor.counters.total_committed,
        txns_cross_shard=int(
            cluster.obs.counter("cluster.txn_cross_shard_total").value
        )
        - cross_before,
        txns_acked=executor.acked_writes,
        txns_recovered=stats["transactions_replayed"],
        in_doubt=stats["in_doubt"],
        resolved_commit=stats["resolved_commit"],
        resolved_abort=stats["resolved_abort"],
        violations=violations,
    )


# ---------------------------------------------------------------------- #
# the fleet runner                                                        #
# ---------------------------------------------------------------------- #


def run_cluster_torture(
    schedules: int = 20,
    seed: int = 0,
    txns: int = 40,
    tpcc_every: int = 5,
    verbose: bool = False,
) -> list[ClusterScheduleReport]:
    """Run ``schedules`` seeded cluster lifetimes; returns every report.

    Seeds are ``seed .. seed+schedules-1``.  Every ``tpcc_every``-th
    schedule runs the TPC-C mode (alternating 2 and 4 shards); the rest
    run the KV mode with a seeded shard count.
    """
    reports = []
    for i in range(schedules):
        s = seed + i
        mode = "tpcc" if tpcc_every and i % tpcc_every == tpcc_every - 1 else "kv"
        report = run_cluster_schedule(s, mode=mode, txns=txns)
        reports.append(report)
        if verbose or not report.ok:
            print(report)
    return reports
