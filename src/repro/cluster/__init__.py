"""Sharded multi-instance engine with a crash-safe 2PC coordinator.

This package turns the single-node engine into the skeleton of a
distributed system: :class:`ShardedDatabase` hash-shards tables across N
independent :class:`repro.db.Database` instances behind a router
(:mod:`repro.cluster.router`), passes single-shard transactions through
the untouched per-shard commit path, and commits cross-shard
transactions via two-phase commit (:mod:`repro.cluster.coordinator`) —
prepare is WAL-durable per shard, the commit decision is forced to the
coordinator's own log, and recovery follows presumed abort.

See ``docs/cluster.md`` for the sharding model, the 2PC state machine,
and the failure model; ``python -m repro.cluster`` runs the seeded
cluster crash-torture harness (:mod:`repro.cluster.harness`).
"""

from repro.cluster.coordinator import CoordinatorLog, TwoPhaseCoordinator
from repro.cluster.harness import (
    ClusterScheduleReport,
    run_cluster_schedule,
    run_cluster_torture,
)
from repro.cluster.router import Router, TableRoute
from repro.cluster.sharded import (
    DistributedTransaction,
    ShardedCatalog,
    ShardedDatabase,
    ShardedIndex,
    ShardedTable,
    ShardSlot,
)

__all__ = [
    "ClusterScheduleReport",
    "CoordinatorLog",
    "DistributedTransaction",
    "Router",
    "ShardSlot",
    "ShardedCatalog",
    "ShardedDatabase",
    "ShardedIndex",
    "ShardedTable",
    "TableRoute",
    "TwoPhaseCoordinator",
    "run_cluster_schedule",
    "run_cluster_torture",
]
