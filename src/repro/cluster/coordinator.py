"""The two-phase commit coordinator and its durable decision log.

State machine (presumed abort)::

    phase 1:  for each participant, in shard order:
                  prepare  — force the PRP record, hold the txn PREPARED
              any failure → decision = ABORT
    decide:   COMMIT decisions are *forced* to the coordinator log before
              any participant may commit (the classic 2PC write-ahead
              rule); ABORT decisions are written unforced — losing one in
              a crash is harmless because recovery presumes abort.
    phase 2:  COMMIT → commit_prepared on every participant
              ABORT  → abort every still-live participant, then raise
                       CoordinationAbort (retryable)

Crash safety hinges on one subtlety: if forcing a COMMIT decision fails,
the partially-written record is *rewound* (seek + truncate) before the
coordinator falls back to aborting the participants.  Without the rewind
a crash image could still contain the complete commit record while the
participants aborted — recovery would then commit what the living system
rolled back.  When the rewind itself fails the coordinator can neither
commit nor safely abort: it raises :class:`TwoPhaseInDoubt` and leaves
the participants prepared for recovery to resolve.

Named crash points (see :mod:`repro.fault.crashpoints`):

``coordinator.prepare``   before each participant's prepare call
``participant.ack``       after each durable prepare ack and after each
                          phase-2 participant application
``coordinator.decide``    twice around the decision write (distinguish
                          with the injector's ``skip`` count)
"""

from __future__ import annotations

import io
import threading
from typing import TYPE_CHECKING, BinaryIO

from repro.errors import (
    CoordinationAbort,
    DegradedError,
    TransactionAborted,
    TwoPhaseInDoubt,
)
from repro.fault.crashpoints import crash_point
from repro.obs import trace
from repro.obs.recorder import Recorder, get_recorder
from repro.obs.registry import MetricRegistry
from repro.obs.slo import stamp_phase
from repro.txn.context import TxnState
from repro.wal.records import (
    DECISION_ABORT,
    DECISION_COMMIT,
    LoggedDecision,
    decode_entries,
    encode_decision,
)

if TYPE_CHECKING:
    from repro.cluster.sharded import DistributedTransaction, ShardedDatabase


class CoordinatorLog:
    """The coordinator's durable decision log (DEC records only)."""

    def __init__(self, device: BinaryIO | None = None) -> None:
        self.device = device if device is not None else io.BytesIO()
        self._offset = 0
        self._lock = threading.Lock()
        self.commits_logged = 0
        self.aborts_logged = 0
        self.degraded = False
        self.degraded_reason: str | None = None

    def log_decision(self, gid: str, decision: int, force: bool) -> None:
        """Append one decision record; ``force=True`` fsyncs it.

        On a device error the partial record is rewound away and
        :class:`OSError` raised (the caller may then decide abort
        instead).  An un-rewindable failure raises
        :class:`TwoPhaseInDoubt` and poisons the log: a later crash
        image could contain bytes the living process cannot see past.
        """
        payload = encode_decision(gid, decision)
        with self._lock:
            if self.degraded:
                raise TwoPhaseInDoubt(
                    f"coordinator log is poisoned: {self.degraded_reason}"
                )
            start = self._offset
            try:
                self.device.write(payload)
                if force:
                    self.device.flush()
            except Exception as exc:
                self._rewind_or_poison(start, exc)
            self._offset += len(payload)
            if decision == DECISION_COMMIT:
                self.commits_logged += 1
            else:
                self.aborts_logged += 1

    def _rewind_or_poison(self, offset: int, exc: Exception) -> None:
        try:
            self.device.seek(offset)
            self.device.truncate(offset)
        except Exception:
            self.degraded = True
            self.degraded_reason = f"coordinator log unrewindable after {exc!r}"
            raise TwoPhaseInDoubt(self.degraded_reason) from exc
        raise OSError(f"coordinator log write failed: {exc!r}") from exc

    def contents(self) -> bytes:
        """The full decision log image (in-memory devices only)."""
        if isinstance(self.device, io.BytesIO):
            return self.device.getvalue()
        image = getattr(self.device, "image", None)
        if callable(image):
            return image()
        raise TypeError("contents() requires an in-memory log device")

    @staticmethod
    def decisions_from(raw: bytes) -> dict[str, int]:
        """Parse a (possibly torn) decision log into ``{gid: decision}``."""
        decisions: dict[str, int] = {}
        for entry in decode_entries(raw, tolerate_torn_tail=True):
            if isinstance(entry, LoggedDecision):
                decisions[entry.gid] = entry.decision
        return decisions


class TwoPhaseCoordinator:
    """Drives prepare/decide/apply across a transaction's participants."""

    def __init__(
        self,
        cluster: "ShardedDatabase",
        log: CoordinatorLog,
        registry: MetricRegistry | None = None,
        recorder: Recorder | None = None,
    ) -> None:
        self.cluster = cluster
        self.log = log
        self.recorder = recorder if recorder is not None else get_recorder()
        reg = registry if registry is not None else MetricRegistry()
        self._m_commits = reg.counter(
            "cluster.2pc_commit_total", "cross-shard transactions committed"
        )
        self._m_aborts = reg.counter(
            "cluster.2pc_abort_total", "cross-shard transactions aborted by 2PC"
        )
        self._m_prepares = reg.counter(
            "cluster.prepare_total", "participant prepare calls issued"
        )

    def commit(self, dtxn: "DistributedTransaction") -> int:
        """Run 2PC over ``dtxn``'s write participants; returns the largest
        per-shard commit timestamp.

        Raises :class:`CoordinationAbort` (after full rollback everywhere)
        when any prepare fails or the commit decision cannot be written
        but *can* be rewound; raises :class:`TwoPhaseInDoubt` — leaving
        the participants prepared — when it cannot even do that.
        """
        gid = dtxn.gid
        assert gid is not None
        # Read-only participants were committed by the facade before this
        # call (the read-only 2PC optimization); only writers vote.
        participants = sorted(
            (sid, txn)
            for sid, txn in dtxn.participants.items()
            if not txn.is_read_only
        )
        # The whole protocol runs under one span (adopting any enclosing
        # trace), and the journal events carry its trace id, so timelines
        # and Chrome traces show coordinator + per-shard + relayed worker
        # work as one causal tree.
        with trace.span("cluster.2pc", gid=gid) as root_span:
            ctx = trace.current_context()
            trace_id = ctx.trace_id if ctx is not None else None
            self.recorder.record(
                "cluster.prepare", gid=gid,
                shards=[sid for sid, _ in participants], trace_id=trace_id,
            )

            # ---- phase 1: prepare every participant, in shard order ---- #
            reason: BaseException | None = None
            with stamp_phase("cluster.prepare"):
                for shard_id, txn in participants:
                    with trace.span("cluster.2pc.prepare", shard=shard_id):
                        crash_point("coordinator.prepare")
                        self._m_prepares.inc()
                        try:
                            self.cluster.shards[shard_id].txn_manager.prepare(
                                txn, gid
                            )
                        except (
                            TransactionAborted, DegradedError, OSError
                        ) as exc:
                            # The failing participant rolled itself back
                            # inside prepare; the rest are aborted below.
                            reason = exc
                            break
                        crash_point("participant.ack")

            decision = DECISION_COMMIT if reason is None else DECISION_ABORT

            # ---- decide: force commit decisions before phase 2 ---- #
            with stamp_phase("cluster.decide"), trace.span(
                "cluster.2pc.decide"
            ) as decide_span:
                crash_point("coordinator.decide")
                if decision == DECISION_COMMIT:
                    try:
                        self.log.log_decision(gid, DECISION_COMMIT, force=True)
                    except TwoPhaseInDoubt:
                        # Cannot commit, cannot safely abort: hand the
                        # prepared participants to recovery.
                        decide_span.set_attr("decision", "in-doubt")
                        self.recorder.record(
                            "cluster.decide", gid=gid, decision="in-doubt",
                            trace_id=trace_id,
                        )
                        raise
                    except Exception as exc:
                        # The partial record was rewound, so no crash image
                        # can resurrect a commit decision: aborting is safe.
                        reason = exc
                        decision = DECISION_ABORT
                if decision == DECISION_ABORT:
                    try:
                        self.log.log_decision(gid, DECISION_ABORT, force=False)
                    except Exception:
                        pass  # presumed abort: unwritten abort record is fine
                crash_point("coordinator.decide")
                decided = (
                    "commit" if decision == DECISION_COMMIT else "abort"
                )
                decide_span.set_attr("decision", decided)
                self.recorder.record(
                    "cluster.decide", gid=gid, decision=decided,
                    trace_id=trace_id,
                )

            # ---- phase 2: apply the decision on every participant ---- #
            if decision == DECISION_COMMIT:
                commit_ts = 0
                for shard_id, txn in participants:
                    with trace.span(
                        "cluster.2pc.commit_prepared", shard=shard_id
                    ):
                        commit_ts = max(
                            commit_ts,
                            self.cluster.shards[
                                shard_id
                            ].txn_manager.commit_prepared(txn),
                        )
                        crash_point("participant.ack")
                self._m_commits.inc()
                return commit_ts

            root_span.set_attr("aborted", True)
            for shard_id, txn in participants:
                if txn.state in (TxnState.ACTIVE, TxnState.PREPARED):
                    with trace.span("cluster.2pc.abort", shard=shard_id):
                        self.cluster.shards[shard_id].txn_manager.abort(txn)
                        crash_point("participant.ack")
            self._m_aborts.inc()
            raise CoordinationAbort(
                f"distributed transaction {gid} aborted during 2PC: {reason!r}"
            ) from reason
