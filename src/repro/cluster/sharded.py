"""``ShardedDatabase``: N independent engines behind one database facade.

Each shard is a full, unmodified :class:`repro.db.Database` with its own
timestamp domain, WAL, GC, and transformation pipeline.  The facade owns
a :class:`~repro.cluster.router.Router` mapping rows and index keys to
shards, a :class:`~repro.cluster.coordinator.TwoPhaseCoordinator` with a
durable decision log, and cluster-level observability (a shared flight
recorder plus per-shard gauges in one registry).

A transaction here is a :class:`DistributedTransaction`: per-shard
participant transactions begun lazily the first time an operation touches
a shard.  At commit:

- no participants, or writes on a single shard → plain per-shard commit,
  exactly the single-node code path (read-only participants on other
  shards just end their snapshots);
- writes on two or more shards → two-phase commit through the
  coordinator (prepare is WAL-forced per shard, the commit decision is
  forced to the coordinator log, recovery is presumed-abort).

The facade deliberately mirrors enough of ``Database``'s surface —
``catalog.table()/index()/get()``, ``begin/commit/abort/transaction``,
``run_transaction``, ``health()``, ``obs``, ``recorder``, ``serve_obs``,
``timeline`` — that the TPC-C loader, driver, transaction profiles,
consistency checker, retry helper, and obs HTTP server all run against a
cluster unmodified.
"""

from __future__ import annotations

import contextlib
import heapq
import itertools
import threading
from dataclasses import dataclass
from typing import Any, BinaryIO, Callable, Iterable, Iterator, Literal, Mapping

from repro.cluster.coordinator import CoordinatorLog, TwoPhaseCoordinator
from repro.cluster.router import Router
from repro.db import Database
from repro.errors import CatalogError, TransactionAborted, TwoPhaseInDoubt
from repro.obs.recorder import Recorder
from repro.obs.registry import MetricRegistry
from repro.obs.slo import RequestLog, SloTracker, stamp_phase
from repro.storage.constants import BLOCK_SIZE
from repro.storage.layout import ColumnSpec
from repro.storage.projection import ProjectedRow
from repro.storage.tuple_slot import TupleSlot
from repro.txn.context import TransactionContext, TxnState
from repro.wal.records import DECISION_COMMIT
from repro.wal.recovery import RecoveryManager


@dataclass(frozen=True)
class ShardSlot:
    """A tuple address qualified by the shard that owns it."""

    shard_id: int
    slot: TupleSlot

    def __repr__(self) -> str:
        return f"ShardSlot(shard={self.shard_id}, {self.slot})"


class DistributedTransaction:
    """One logical transaction spanning lazily-begun shard participants."""

    def __init__(self, cluster: "ShardedDatabase", txn_id: int) -> None:
        self._cluster = cluster
        self.txn_id = txn_id
        #: Shard id → that shard's participant transaction.
        self.participants: dict[int, TransactionContext] = {}
        self.state = TxnState.ACTIVE
        #: Global id, assigned only if commit goes through 2PC.
        self.gid: str | None = None
        self.commit_ts: int | None = None
        self._durable = threading.Event()
        self._callbacks: list[Callable[[], None]] = []

    # -- state --------------------------------------------------------- #

    @property
    def is_active(self) -> bool:
        return self.state is TxnState.ACTIVE

    @property
    def must_abort(self) -> bool:
        return any(txn.must_abort for txn in self.participants.values())

    @property
    def is_read_only(self) -> bool:
        return all(txn.is_read_only for txn in self.participants.values())

    @property
    def redo_buffer(self) -> list:
        """Combined redo records across participants (sized, iterable)."""
        records: list = []
        for txn in self.participants.values():
            records.extend(txn.redo_buffer)
        return records

    # -- shard access -------------------------------------------------- #

    def on_shard(self, shard_id: int) -> TransactionContext:
        """The participant on ``shard_id``, begun on first touch."""
        txn = self.participants.get(shard_id)
        if txn is None:
            if self.state is not TxnState.ACTIVE:
                raise TransactionAborted(f"transaction already {self.state.value}")
            txn = self._cluster.shards[shard_id].begin()
            self.participants[shard_id] = txn
        return txn

    def read_shard(self) -> int:
        """Shard used for replicated-table reads: an existing participant
        when there is one (so a single-warehouse transaction stays
        single-shard), else this transaction's home shard."""
        if self.participants:
            return min(self.participants)
        return self.txn_id % self._cluster.n_shards

    # -- durability ---------------------------------------------------- #

    def on_durable(self, callback: Callable[[], None]) -> None:
        if self._durable.is_set():
            callback()
        else:
            self._callbacks.append(callback)

    def signal_durable(self) -> None:
        self._durable.set()
        callbacks, self._callbacks = self._callbacks, []
        first_error: BaseException | None = None
        for callback in callbacks:
            try:
                callback()
            except Exception as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error

    def wait_durable(self, timeout: float | None = None) -> bool:
        if self._durable.is_set():
            return True
        # Same attribution as the single-node path: with background group
        # commit, this wait is fsync latency on the request's critical path.
        with stamp_phase("wal.fsync_wait"):
            return self._durable.wait(timeout)

    @property
    def is_durable(self) -> bool:
        return self._durable.is_set()

    def _wire_durability(self) -> None:
        """Count down participant durability into one cluster-level signal."""
        participants = list(self.participants.values())
        if not participants:
            self.signal_durable()
            return
        remaining = len(participants)
        lock = threading.Lock()

        def one_done() -> None:
            nonlocal remaining
            with lock:
                remaining -= 1
                last = remaining == 0
            if last:
                self.signal_durable()

        for txn in participants:
            txn.on_durable(one_done)

    def __repr__(self) -> str:
        return (
            f"DistributedTransaction(id={self.txn_id}, state={self.state.value}, "
            f"shards={sorted(self.participants)})"
        )


class ShardedTable:
    """Routes one table's operations to the owning shards."""

    def __init__(self, cluster: "ShardedDatabase", name: str) -> None:
        self._cluster = cluster
        self.name = name

    def _local(self, shard_id: int):
        return self._cluster.shards[shard_id].catalog.table(self.name)

    def insert(
        self, txn: DistributedTransaction, values: Mapping[int, Any]
    ) -> ShardSlot:
        route = self._cluster.router.route(self.name)
        if route.replicated:
            # Writes to replicated tables broadcast to every replica.
            first: ShardSlot | None = None
            for shard_id in range(self._cluster.n_shards):
                slot = self._local(shard_id).insert(txn.on_shard(shard_id), values)
                if first is None:
                    first = ShardSlot(shard_id, slot)
            assert first is not None
            return first
        shard_id = self._cluster.router.shard_for_row(self.name, values)
        slot = self._local(shard_id).insert(txn.on_shard(shard_id), values)
        return ShardSlot(shard_id, slot)

    def update(
        self, txn: DistributedTransaction, slot: ShardSlot, values: Mapping[int, Any]
    ) -> bool:
        return self._local(slot.shard_id).update(
            txn.on_shard(slot.shard_id), slot.slot, values
        )

    def delete(self, txn: DistributedTransaction, slot: ShardSlot) -> bool:
        return self._local(slot.shard_id).delete(
            txn.on_shard(slot.shard_id), slot.slot
        )

    def select(
        self,
        txn: DistributedTransaction,
        slot: ShardSlot,
        column_ids: list[int] | None = None,
    ) -> ProjectedRow | None:
        return self._local(slot.shard_id).select(
            txn.on_shard(slot.shard_id), slot.slot, column_ids
        )

    def scan(
        self, txn: DistributedTransaction, column_ids: list[int] | None = None
    ) -> Iterator[tuple[ShardSlot, ProjectedRow]]:
        route = self._cluster.router.route(self.name)
        if route.replicated:
            shard_id = txn.read_shard()
            for slot, row in self._local(shard_id).scan(
                txn.on_shard(shard_id), column_ids
            ):
                yield ShardSlot(shard_id, slot), row
            return
        for shard_id in range(self._cluster.n_shards):
            for slot, row in self._local(shard_id).scan(
                txn.on_shard(shard_id), column_ids
            ):
                yield ShardSlot(shard_id, slot), row

    def live_tuple_count(self) -> int:
        if self._cluster.router.route(self.name).replicated:
            return self._local(0).live_tuple_count()
        return sum(
            self._local(s).live_tuple_count() for s in range(self._cluster.n_shards)
        )

    def block_states(self) -> dict:
        merged: dict = {}
        for shard_id in range(self._cluster.n_shards):
            for state, count in self._local(shard_id).block_states().items():
                merged[state] = merged.get(state, 0) + count
        return merged


class ShardedIndex:
    """Routes one index's lookups/scans to the owning shards."""

    def __init__(
        self, cluster: "ShardedDatabase", table_name: str, index_name: str
    ) -> None:
        self._cluster = cluster
        self.table_name = table_name
        self.index_name = index_name

    def _local(self, shard_id: int):
        return self._cluster.shards[shard_id].catalog.index(
            self.table_name, self.index_name
        )

    def _single_shard_for(self, txn: DistributedTransaction, key: tuple) -> int | None:
        router = self._cluster.router
        if router.route(self.table_name).replicated:
            return txn.read_shard()
        if router.is_routable(self.table_name, self.index_name):
            return router.shard_for_key(self.table_name, self.index_name, key)
        return None

    def lookup(
        self,
        txn: DistributedTransaction,
        key: tuple,
        column_ids: list[int] | None = None,
    ) -> list[tuple[ShardSlot, ProjectedRow]]:
        shard_id = self._single_shard_for(txn, key)
        shard_ids = (
            [shard_id] if shard_id is not None else range(self._cluster.n_shards)
        )
        results: list[tuple[ShardSlot, ProjectedRow]] = []
        for sid in shard_ids:
            results.extend(
                (ShardSlot(sid, slot), row)
                for slot, row in self._local(sid).lookup(
                    txn.on_shard(sid), key, column_ids
                )
            )
        return results

    def range_scan(
        self,
        txn: DistributedTransaction,
        low: tuple | None = None,
        high: tuple | None = None,
        column_ids: list[int] | None = None,
    ) -> Iterable[tuple[tuple, ShardSlot, ProjectedRow]]:
        router = self._cluster.router
        shard_id: int | None = None
        if router.route(self.table_name).replicated:
            shard_id = txn.read_shard()
        elif (
            router.is_routable(self.table_name, self.index_name)
            and low is not None
            and high is not None
            and router.shard_of(low[0]) == router.shard_of(high[0])
        ):
            shard_id = router.shard_of(low[0])
        if shard_id is not None:
            for key, slot, row in self._local(shard_id).range_scan(
                txn.on_shard(shard_id), low, high, column_ids
            ):
                yield key, ShardSlot(shard_id, slot), row
            return

        def per_shard(sid: int):
            for key, slot, row in self._local(sid).range_scan(
                txn.on_shard(sid), low, high, column_ids
            ):
                yield key, ShardSlot(sid, slot), row

        # Keys are totally ordered within each shard; merge preserves the
        # global order a single-node range scan would produce.
        yield from heapq.merge(
            *(per_shard(sid) for sid in range(self._cluster.n_shards)),
            key=lambda item: item[0],
        )

    def __len__(self) -> int:
        if self._cluster.router.route(self.table_name).replicated:
            return len(self._local(0))
        return sum(len(self._local(s)) for s in range(self._cluster.n_shards))


class ShardedTableInfo:
    """The slice of :class:`repro.catalog.catalog.TableInfo` consumers use."""

    def __init__(self, cluster: "ShardedDatabase", name: str) -> None:
        self.name = name
        self.table = cluster.catalog.table(name)
        self._info0 = cluster.shards[0].catalog.get(name)

    @property
    def columns(self) -> list[ColumnSpec]:
        return self._info0.columns

    def column_id(self, column_name: str) -> int:
        return self._info0.column_id(column_name)


class ShardedCatalog:
    """Name → sharded-table/index facade registry."""

    def __init__(self, cluster: "ShardedDatabase") -> None:
        self._cluster = cluster
        self._tables: dict[str, ShardedTable] = {}
        self._indexes: dict[tuple[str, str], ShardedIndex] = {}

    def table(self, name: str) -> ShardedTable:
        if name not in self._tables:
            self._cluster.shards[0].catalog.get(name)  # existence check
            self._tables[name] = ShardedTable(self._cluster, name)
        return self._tables[name]

    def index(self, table_name: str, index_name: str) -> ShardedIndex:
        key = (table_name, index_name)
        if key not in self._indexes:
            self._cluster.shards[0].catalog.index(table_name, index_name)
            self._indexes[key] = ShardedIndex(self._cluster, table_name, index_name)
        return self._indexes[key]

    def get(self, name: str) -> ShardedTableInfo:
        return ShardedTableInfo(self._cluster, name)

    def table_names(self) -> list[str]:
        return self._cluster.shards[0].catalog.table_names()

    def __contains__(self, name: str) -> bool:
        return name in self._cluster.shards[0].catalog

    def __len__(self) -> int:
        return len(self._cluster.shards[0].catalog)


class ShardedDatabase:
    """N hash-sharded engine instances behind one database facade."""

    def __init__(
        self,
        n_shards: int = 2,
        shard_keys: Mapping[str, str] | None = None,
        log_devices: list[BinaryIO] | None = None,
        coordinator_device: BinaryIO | None = None,
        logging_enabled: bool = True,
        node_name: str = "node0",
        slow_txn_threshold: float | None = None,
        **db_kwargs: Any,
    ) -> None:
        if n_shards < 1:
            raise CatalogError("a cluster needs at least one shard")
        if log_devices is not None and len(log_devices) != n_shards:
            raise CatalogError(
                f"{len(log_devices)} log devices for {n_shards} shards"
            )
        self.n_shards = n_shards
        self.node_name = node_name
        #: Table name → shard column name, consulted by ``create_table``
        #: when no explicit ``shard_key`` is passed (tables absent from
        #: the map are replicated).
        self._shard_keys = dict(shard_keys or {})
        #: Cluster-level registry: per-shard gauges plus 2PC counters.
        #: Shard-internal metrics stay in each shard's own registry.
        self.obs = MetricRegistry()
        #: One flight recorder shared by every shard and the coordinator,
        #: so cross-shard timelines interleave in causal order.
        self.recorder = Recorder(
            registry=self.obs, slow_txn_threshold=slow_txn_threshold
        )
        #: Per-tenant SLO accounting + completed-request breakdowns for
        #: the whole cluster (the service front door feeds both; the obs
        #: server serves them at /slo and /request/<id>).
        self.slo = SloTracker(registry=self.obs)
        self.request_log = RequestLog()
        devices: list[BinaryIO | None] = (
            list(log_devices) if log_devices is not None else [None] * n_shards
        )
        self.shards = [
            Database(
                log_device=devices[i],
                logging_enabled=logging_enabled,
                recorder=self.recorder,
                **db_kwargs,
            )
            for i in range(n_shards)
        ]
        self.router = Router(n_shards)
        self.catalog = ShardedCatalog(self)
        self.coordinator_log = CoordinatorLog(coordinator_device)
        self.coordinator = TwoPhaseCoordinator(
            self, self.coordinator_log, registry=self.obs, recorder=self.recorder
        )
        self._txn_seq = itertools.count(1)
        self._gid_seq = itertools.count(1)
        self._obs_server = None
        #: In-doubt transactions resolved by the last ``recover_from``.
        self.indoubt_resolved = {"commit": 0, "abort": 0}
        reg = self.obs
        self._m_single = reg.counter(
            "cluster.txn_single_shard_total",
            "transactions committed on the single-shard fast path",
        )
        self._m_cross = reg.counter(
            "cluster.txn_cross_shard_total",
            "transactions committed/aborted through two-phase commit",
        )
        reg.gauge("cluster.shards", "shards in this cluster").set(n_shards)
        reg.gauge(
            "cluster.coordinator.healthy",
            "1 while the coordinator decision log works",
            callback=lambda: 0.0 if self.coordinator_log.degraded else 1.0,
        )
        for i, shard in enumerate(self.shards):
            self._register_shard_gauges(i, shard)

    def _register_shard_gauges(self, shard_id: int, shard: Database) -> None:
        """Per-shard health/load gauges, one labelled series per shard."""
        labels = {"shard": str(shard_id)}
        reg = self.obs
        reg.gauge(
            "cluster.shard.healthy",
            "1 while this shard accepts writes",
            callback=lambda: 0.0 if shard.degraded else 1.0,
            labels=labels,
        )
        reg.gauge(
            "cluster.shard.txns_active",
            "in-flight transactions on this shard",
            callback=lambda: shard.txn_manager.active_count,
            labels=labels,
        )
        reg.gauge(
            "cluster.shard.wal_pending",
            "this shard's flush-queue depth",
            callback=lambda: (
                shard.log_manager.pending_count
                if shard.log_manager is not None
                else 0
            ),
            labels=labels,
        )
        reg.gauge(
            "cluster.shard.live_tuples",
            "visible tuples on this shard",
            callback=shard._live_tuple_count,
            labels=labels,
        )

    # ------------------------------------------------------------------ #
    # DDL                                                                 #
    # ------------------------------------------------------------------ #

    def create_table(
        self,
        name: str,
        columns: list[ColumnSpec],
        block_size: int = BLOCK_SIZE,
        watch_cold: bool = False,
        shard_key: str | None = None,
    ) -> ShardedTableInfo:
        """Create a table on every shard and register its route.

        ``shard_key`` names the shard column; when omitted the
        constructor's ``shard_keys`` map is consulted, and a table in
        neither is *replicated* (broadcast writes, single-replica reads).
        """
        key = shard_key if shard_key is not None else self._shard_keys.get(name)
        info0 = None
        for shard in self.shards:
            info = shard.create_table(
                name, columns, block_size=block_size, watch_cold=watch_cold
            )
            if info0 is None:
                info0 = info
        assert info0 is not None
        if key is None:
            self.router.register_table(name, None, None)
        else:
            self.router.register_table(name, info0.column_id(key), key)
        return self.catalog.get(name)

    def create_index(
        self,
        table_name: str,
        index_name: str,
        key_columns: list[str],
        kind: Literal["bplus", "hash"] = "bplus",
    ) -> ShardedIndex:
        for shard in self.shards:
            shard.create_index(table_name, index_name, key_columns, kind)
        self.router.register_index(table_name, index_name, key_columns)
        return self.catalog.index(table_name, index_name)

    # ------------------------------------------------------------------ #
    # transactions                                                        #
    # ------------------------------------------------------------------ #

    def begin(self) -> DistributedTransaction:
        """Start a distributed transaction (participants begin lazily)."""
        return DistributedTransaction(self, next(self._txn_seq))

    def commit(self, dtxn: DistributedTransaction) -> int:
        """Commit; single-writer transactions take the untouched per-shard
        path, multi-writer transactions go through two-phase commit.

        Returns the largest per-shard commit timestamp.  Raises
        :class:`TransactionAborted` / :class:`CoordinationAbort` after
        rolling back everywhere, or :class:`TwoPhaseInDoubt` leaving the
        participants prepared for recovery.
        """
        if dtxn.state is not TxnState.ACTIVE:
            raise TransactionAborted(f"transaction already {dtxn.state.value}")
        if dtxn.must_abort:
            self.abort(dtxn)
            raise TransactionAborted("transaction aborted by write-write conflict")
        writers = {
            sid: txn
            for sid, txn in dtxn.participants.items()
            if not txn.is_read_only
        }
        dtxn._wire_durability()
        try:
            # Read-only participants just end their snapshots — they hold
            # no locks and need no vote (the read-only 2PC optimization).
            for sid in sorted(dtxn.participants):
                if sid not in writers:
                    self.shards[sid].commit(dtxn.participants[sid])
            if len(writers) <= 1:
                self._m_single.inc()
                commit_ts = 0
                for sid, txn in writers.items():
                    commit_ts = self.shards[sid].commit(txn)
            else:
                self._m_cross.inc()
                dtxn.gid = f"{self.node_name}.{next(self._gid_seq)}"
                commit_ts = self.coordinator.commit(dtxn)
        except TwoPhaseInDoubt:
            dtxn.state = TxnState.PREPARED
            raise
        except BaseException:
            if dtxn.state is TxnState.ACTIVE:
                dtxn.state = TxnState.ABORTED
            raise
        dtxn.state = TxnState.COMMITTED
        dtxn.commit_ts = commit_ts
        return commit_ts

    def abort(self, dtxn: DistributedTransaction) -> None:
        """Roll back every live participant."""
        if dtxn.state is not TxnState.ACTIVE:
            raise TransactionAborted(f"transaction already {dtxn.state.value}")
        for sid in sorted(dtxn.participants):
            txn = dtxn.participants[sid]
            if txn.state in (TxnState.ACTIVE, TxnState.PREPARED):
                self.shards[sid].abort(txn)
        dtxn.state = TxnState.ABORTED
        dtxn.signal_durable()

    @contextlib.contextmanager
    def transaction(self) -> Iterator[DistributedTransaction]:
        """Context manager committing on success, aborting on exception."""
        dtxn = self.begin()
        try:
            yield dtxn
        except BaseException:
            if dtxn.is_active:
                self.abort(dtxn)
            raise
        else:
            if dtxn.is_active:
                self.commit(dtxn)

    def run_transaction(self, body, retries: int = 3):
        """Run ``body(txn)`` with retry on conflicts *and* 2PC
        coordination aborts (see :func:`repro.txn.retry.retry_transaction`)."""
        from repro.txn.retry import retry_transaction

        return retry_transaction(self, body, retries=retries, base_backoff=0.0)

    # ------------------------------------------------------------------ #
    # maintenance                                                         #
    # ------------------------------------------------------------------ #

    def run_maintenance(self, passes: int = 1) -> int:
        return sum(shard.run_maintenance(passes) for shard in self.shards)

    def quiesce(self, max_passes: int = 16) -> None:
        for shard in self.shards:
            shard.quiesce(max_passes)

    def flush_all(self) -> None:
        """Flush every shard's WAL queue (coordinator log needs none —
        commit decisions are forced at decision time)."""
        for shard in self.shards:
            if shard.log_manager is not None:
                shard.log_manager.flush()

    def close(self) -> None:
        self.stop_serving_obs()
        first_error: BaseException | None = None
        for shard in self.shards:
            try:
                shard.close()
            except Exception as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error

    # ------------------------------------------------------------------ #
    # health & observability                                              #
    # ------------------------------------------------------------------ #

    @property
    def degraded(self) -> bool:
        return self.coordinator_log.degraded or any(
            shard.degraded for shard in self.shards
        )

    def health(self) -> dict:
        """Aggregated liveness: cluster status is the worst shard's.

        ``status`` is ``"degraded"`` as soon as *any* shard (or the
        coordinator log) is degraded — the obs HTTP server turns that
        into a 503 on ``/healthz``.
        """
        shards = {str(i): shard.health() for i, shard in enumerate(self.shards)}
        degraded_shards = [
            i for i, shard in enumerate(self.shards) if shard.degraded
        ]
        reason = None
        if self.coordinator_log.degraded:
            reason = self.coordinator_log.degraded_reason
        elif degraded_shards:
            first = degraded_shards[0]
            reason = (
                f"shard {first} degraded: "
                f"{self.shards[first].txn_manager.degraded_reason}"
            )
        # Roll the per-shard worker-pool liveness sections up into one
        # cluster-wide view (None when no shard has started a pool).
        pools = [s["workers"] for s in shards.values() if s.get("workers")]
        workers = None
        if pools:
            ages = [
                p["oldest_outstanding_age_seconds"]
                for p in pools
                if p["oldest_outstanding_age_seconds"] is not None
            ]
            workers = {
                "configured": sum(p["configured"] for p in pools),
                "alive": sum(p["alive"] for p in pools),
                "restarts": sum(p["restarts"] for p in pools),
                "outstanding_tasks": sum(p["outstanding_tasks"] for p in pools),
                "oldest_outstanding_age_seconds": max(ages) if ages else None,
            }
        return {
            "status": "degraded" if self.degraded else "ok",
            "degraded_reason": reason,
            "shards": shards,
            "degraded_shards": degraded_shards,
            "coordinator": {
                "healthy": not self.coordinator_log.degraded,
                "degraded_reason": self.coordinator_log.degraded_reason,
                "commits_logged": self.coordinator_log.commits_logged,
                "aborts_logged": self.coordinator_log.aborts_logged,
                "in_doubt_resolved": dict(self.indoubt_resolved),
            },
            "wal": None,
            "workers": workers,
            "slo": self.slo.health_summary(),
        }

    def timeline(self, txn_id: int) -> dict:
        return self.recorder.timeline(txn_id)

    def serve_obs(self, port: int = 0, host: str = "127.0.0.1"):
        """Start the standard obs HTTP server against the cluster facade
        (same endpoints as ``Database.serve_obs``; ``/healthz`` reports
        the aggregated cluster health)."""
        if self._obs_server is None:
            from repro.obs.server import ObsServer

            self._obs_server = ObsServer(self, host=host, port=port).start()
        return self._obs_server

    def stop_serving_obs(self) -> None:
        server, self._obs_server = self._obs_server, None
        if server is not None:
            server.stop()

    # ------------------------------------------------------------------ #
    # durability & recovery                                               #
    # ------------------------------------------------------------------ #

    def shard_log_contents(self) -> list[bytes]:
        """Every shard's WAL image, in shard order (in-memory devices)."""
        return [shard.log_contents() for shard in self.shards]

    def coordinator_log_contents(self) -> bytes:
        return self.coordinator_log.contents()

    def recover_from(
        self,
        shard_logs: list[bytes],
        coordinator_log: bytes,
        tolerate_torn_tail: bool = True,
    ) -> dict:
        """Replay per-shard WALs into this (fresh) cluster, resolving
        in-doubt prepares against the coordinator's decision log.

        Presumed abort: an in-doubt transaction commits only when the
        coordinator log contains a commit decision for its gid; any other
        state — abort decision, torn decision, no decision — aborts it
        (its prepared operations are simply never applied).  Because the
        coordinator forces commit decisions before phase 2, and
        participants force prepares before acking, every gid the log
        commits has durable prepares everywhere it wrote.
        """
        if len(shard_logs) != self.n_shards:
            raise CatalogError(
                f"{len(shard_logs)} shard logs for {self.n_shards} shards"
            )
        decisions = CoordinatorLog.decisions_from(coordinator_log)
        stats = {
            "transactions_replayed": 0,
            "in_doubt": 0,
            "resolved_commit": 0,
            "resolved_abort": 0,
        }
        for shard_id, (shard, raw) in enumerate(zip(self.shards, shard_logs)):
            recovery = RecoveryManager(
                shard.txn_manager, shard.catalog.data_tables()
            )
            replayed, indoubt = recovery.replay_with_indoubt(
                raw, tolerate_torn_tail=tolerate_torn_tail
            )
            stats["transactions_replayed"] += replayed
            for gid, operations in indoubt.items():
                stats["in_doubt"] += 1
                if decisions.get(gid) == DECISION_COMMIT:
                    recovery.apply_operations(operations)
                    stats["resolved_commit"] += 1
                    stats["transactions_replayed"] += 1
                    self.indoubt_resolved["commit"] += 1
                    outcome = "commit"
                else:
                    stats["resolved_abort"] += 1
                    self.indoubt_resolved["abort"] += 1
                    outcome = "abort"
                self.recorder.record(
                    "cluster.resolve", gid=gid, shard=shard_id, decision=outcome
                )
        return stats
