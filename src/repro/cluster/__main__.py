"""Command-line cluster crash-torture runner.

CI entry point::

    PYTHONPATH=src python -m repro.cluster --schedules 20        # PR gate
    PYTHONPATH=src python -m repro.cluster --schedules 200 -v    # nightly

Exit status 0 iff every schedule upholds cross-shard atomicity.
"""

from __future__ import annotations

import argparse
import sys

from repro.cluster.harness import run_cluster_torture


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description="seeded cluster crash-torture schedules (2PC atomicity)",
    )
    parser.add_argument("--schedules", type=int, default=20, help="schedules to run")
    parser.add_argument("--seed", type=int, default=0, help="first schedule seed")
    parser.add_argument("--txns", type=int, default=40, help="transactions per schedule")
    parser.add_argument(
        "--tpcc-every", type=int, default=5,
        help="every Nth schedule runs the TPC-C mode (0 disables)",
    )
    parser.add_argument("-v", "--verbose", action="store_true", help="print every report")
    args = parser.parse_args(argv)

    reports = run_cluster_torture(
        schedules=args.schedules,
        seed=args.seed,
        txns=args.txns,
        tpcc_every=args.tpcc_every,
        verbose=args.verbose,
    )
    failed = [r for r in reports if not r.ok]
    crashed = sum(1 for r in reports if r.crashed)
    cross = sum(r.txns_cross_shard for r in reports)
    print(
        f"{len(reports)} schedules: {len(reports) - len(failed)} ok, "
        f"{len(failed)} failed ({crashed} crashed, {cross} cross-shard, "
        f"{sum(r.txns_acked for r in reports)} acked, "
        f"{sum(r.in_doubt for r in reports)} in-doubt resolved)"
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
