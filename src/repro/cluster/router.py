"""Hash routing: which shard owns a row, a key, a table.

Every sharded table declares one *shard column*; a row lives on
``shard_of(row[shard_column])``.  Integer keys route by value modulo the
shard count — TPC-C's dense warehouse ids spread perfectly that way and
the mapping stays human-predictable in tests — while strings and bytes
route by CRC-32.  Tables without a shard column are *replicated*: writes
broadcast to every shard, reads go to any one replica (TPC-C's ``item``
table, read on every new-order but never written after load).

An index is *routable* when its leading key column is the table's shard
column, which makes every equality lookup and every TPC-C range scan a
single-shard operation.  Lookups on non-routable indexes of sharded
tables fan out to all shards.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import CatalogError


@dataclass(frozen=True)
class TableRoute:
    """Routing metadata for one table."""

    table_name: str
    #: Shard column position, or ``None`` for replicated tables.
    shard_column: int | None
    #: Shard column name (``None`` for replicated tables).
    shard_column_name: str | None

    @property
    def replicated(self) -> bool:
        return self.shard_column is None


class Router:
    """Maps rows and index keys to shard ids."""

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise CatalogError("a cluster needs at least one shard")
        self.n_shards = n_shards
        self._tables: dict[str, TableRoute] = {}
        self._routable_indexes: dict[tuple[str, str], bool] = {}

    # ------------------------------------------------------------------ #
    # registration                                                        #
    # ------------------------------------------------------------------ #

    def register_table(
        self,
        name: str,
        shard_column: int | None,
        shard_column_name: str | None = None,
    ) -> TableRoute:
        """Declare a table's shard column (``None`` = replicated)."""
        if name in self._tables:
            raise CatalogError(f"table {name!r} already routed")
        route = TableRoute(name, shard_column, shard_column_name)
        self._tables[name] = route
        return route

    def register_index(
        self, table_name: str, index_name: str, key_column_names: list[str]
    ) -> bool:
        """Record whether an index can route lookups; returns that fact."""
        route = self.route(table_name)
        routable = (
            not route.replicated
            and bool(key_column_names)
            and key_column_names[0] == route.shard_column_name
        )
        self._routable_indexes[(table_name, index_name)] = routable
        return routable

    # ------------------------------------------------------------------ #
    # routing                                                             #
    # ------------------------------------------------------------------ #

    def route(self, table_name: str) -> TableRoute:
        try:
            return self._tables[table_name]
        except KeyError:
            raise CatalogError(f"no route for table {table_name!r}") from None

    def shard_of(self, value: Any) -> int:
        """The shard owning one shard-key value."""
        if isinstance(value, bool):
            value = int(value)
        if isinstance(value, int):
            return value % self.n_shards
        if isinstance(value, str):
            return zlib.crc32(value.encode("utf-8")) % self.n_shards
        if isinstance(value, bytes):
            return zlib.crc32(value) % self.n_shards
        raise CatalogError(
            f"cannot shard on a value of type {type(value).__name__}"
        )

    def shard_for_row(self, table_name: str, values: Mapping[int, Any]) -> int:
        """The shard a new row of a *sharded* table belongs to."""
        route = self.route(table_name)
        if route.shard_column is None:
            raise CatalogError(f"table {table_name!r} is replicated, not sharded")
        try:
            key = values[route.shard_column]
        except KeyError:
            raise CatalogError(
                f"insert into {table_name!r} omits shard column "
                f"{route.shard_column_name!r}"
            ) from None
        return self.shard_of(key)

    def is_routable(self, table_name: str, index_name: str) -> bool:
        """Whether lookups on an index resolve to a single shard."""
        try:
            return self._routable_indexes[(table_name, index_name)]
        except KeyError:
            raise CatalogError(
                f"no route for index {table_name!r}.{index_name!r}"
            ) from None

    def shard_for_key(self, table_name: str, index_name: str, key: tuple) -> int:
        """The shard a routable index key resolves to."""
        if not self.is_routable(table_name, index_name):
            raise CatalogError(
                f"index {table_name!r}.{index_name!r} cannot route lookups"
            )
        return self.shard_of(key[0])
