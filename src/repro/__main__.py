"""``python -m repro`` — a 30-second live demo of the engine.

Loads a small table, runs transactions, drives the hot→cold pipeline,
exports through every mechanism, and prints the metrics snapshot in the
format of your choice (``--format text|json|prom``) via the ``repro.obs``
exposition layer.
"""

from __future__ import annotations

import argparse
import random

from repro import ColumnSpec, Database, FLOAT64, INT64, UTF8, obs
from repro.bench.reporting import format_table
from repro.export import TableExporter
from repro.query import TableScanner, aggregate


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Arrow-native OLTP storage engine — quick demo",
    )
    parser.add_argument("--rows", type=int, default=20_000, help="rows to load")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--format",
        choices=("text", "json", "prom"),
        default="text",
        help="metrics output: human text, stable JSON, or Prometheus exposition",
    )
    parser.add_argument(
        "--serve-obs",
        type=int,
        metavar="PORT",
        default=None,
        help="serve the monitoring endpoints on PORT while the demo runs "
        "(0 = ephemeral; see also `python -m repro.obs serve`)",
    )
    args = parser.parse_args(argv)

    db = Database(cold_threshold_epochs=1)
    if args.serve_obs is not None:
        server = db.serve_obs(port=args.serve_obs)
        print(f"monitoring endpoints at {server.url} (/metrics /healthz /events ...)")
    info = db.create_table(
        "demo",
        [ColumnSpec("id", INT64), ColumnSpec("name", UTF8), ColumnSpec("value", FLOAT64)],
        block_size=1 << 16,
        watch_cold=True,
    )
    db.create_index("demo", "pk", ["id"], kind="hash")

    rng = random.Random(args.seed)
    print(f"loading {args.rows} rows ...")
    with db.transaction() as txn:
        for i in range(args.rows):
            info.table.insert(
                txn, {0: i, 1: f"name-{i}-padded-for-out-of-line", 2: rng.uniform(0, 100)}
            )
    print("running the hot→cold transformation pipeline ...")
    db.freeze_table("demo")

    scanner = TableScanner(db.txn_manager, info.table, column_ids=[2])
    result = aggregate(scanner, value_column=2)
    print(
        f"in-engine aggregate over frozen blocks: count={result.count} "
        f"avg={result.mean:.2f} ({scanner.frozen_blocks_scanned} blocks in place)\n"
    )

    exporter = TableExporter(db.txn_manager, info.table, registry=db.obs)
    rows = []
    for method in ("postgres", "vectorized", "arrow-wire", "flight", "rdma"):
        r = exporter.export(method)
        rows.append((method, f"{r.throughput_mb_per_sec:,.1f}",
                     f"{r.serialization_seconds * 1000:.1f}"))
    print(format_table("export comparison", ["method", "MB/s", "server ms"], rows))

    print(f"\nmetrics snapshot ({args.format}):")
    if args.format == "json":
        print(obs.render_json(db.obs))
    elif args.format == "prom":
        print(obs.render_prometheus(db.obs), end="")
    else:
        for key, value in db.metrics().items():
            print(f"  {key}: {value}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
