"""A binary IPC stream encoding for record batches and tables.

This is a simplified analogue of the Arrow IPC streaming format: a JSON
schema header followed by length-prefixed, 8-byte-aligned raw buffers.  The
crucial property it shares with real Arrow IPC is that **batch bodies are
the physical buffers themselves** — writing a frozen block to the stream is
a straight memory copy with no per-value serialization, which is what makes
the Flight export path in Section 5 fast.
"""

from __future__ import annotations

import io
import json
import struct

from repro.arrowfmt.array import (
    Array,
    DictionaryArray,
    FixedSizeArray,
    VarBinaryArray,
)
from repro.arrowfmt.buffer import Bitmap, Buffer
from repro.arrowfmt.datatypes import (
    DictionaryType,
    FixedWidthType,
    Schema,
    VarBinaryType,
)
from repro.arrowfmt.table import RecordBatch, Table
from repro.errors import ArrowFormatError

MAGIC = b"RARROW1\x00"
FILE_MAGIC = b"RARROWF1"
_BATCH_MARKER = b"BTCH"
_END_MARKER = b"EOS\x00"
_ALIGN = 8


def _write_buffer(out: io.BytesIO, buffer: Buffer | None) -> None:
    if buffer is None:
        out.write(struct.pack("<q", -1))
        return
    out.write(struct.pack("<q", buffer.size))
    raw = buffer.to_bytes()
    out.write(raw)
    pad = (-len(raw)) % _ALIGN
    if pad:
        out.write(b"\x00" * pad)


def _read_buffer(stream: io.BytesIO) -> Buffer | None:
    (size,) = struct.unpack("<q", _read_exact(stream, 8))
    if size < 0:
        return None
    raw = _read_exact(stream, size)
    pad = (-size) % _ALIGN
    if pad:
        _read_exact(stream, pad)
    return Buffer.from_bytes(raw)


def _read_exact(stream: io.BytesIO, n: int) -> bytes:
    raw = stream.read(n)
    if len(raw) != n:
        raise ArrowFormatError("truncated IPC stream")
    return raw


def _write_array(out: io.BytesIO, array: Array) -> None:
    validity = array.validity.buffer if array.validity is not None else None
    if isinstance(array, FixedSizeArray):
        _write_buffer(out, validity)
        _write_buffer(out, array.values)
    elif isinstance(array, VarBinaryArray):
        _write_buffer(out, validity)
        _write_buffer(out, array.offsets)
        _write_buffer(out, array.values)
    elif isinstance(array, DictionaryArray):
        _write_buffer(out, validity)
        _write_buffer(out, array.codes.values)
        out.write(struct.pack("<q", array.dictionary.length))
        _write_array(out, array.dictionary)
    else:
        raise ArrowFormatError(f"cannot serialize array type {type(array).__name__}")


def _read_array(stream: io.BytesIO, dtype, length: int) -> Array:
    validity_buf = _read_buffer(stream)
    validity = Bitmap(validity_buf, length) if validity_buf is not None else None
    if isinstance(dtype, FixedWidthType):
        values = _read_buffer(stream)
        if values is None:
            raise ArrowFormatError("missing values buffer")
        return FixedSizeArray(dtype, length, values, validity)
    if isinstance(dtype, VarBinaryType):
        offsets = _read_buffer(stream)
        values = _read_buffer(stream)
        if offsets is None or values is None:
            raise ArrowFormatError("missing varbinary buffers")
        return VarBinaryArray(dtype, length, offsets, values, validity)
    if isinstance(dtype, DictionaryType):
        codes_buf = _read_buffer(stream)
        if codes_buf is None:
            raise ArrowFormatError("missing dictionary codes buffer")
        (dict_length,) = struct.unpack("<q", _read_exact(stream, 8))
        dictionary = _read_array(stream, dtype.value_type, dict_length)
        codes = FixedSizeArray(dtype.index_type, length, codes_buf, validity)
        return DictionaryArray(dtype, codes, dictionary, validity)
    raise ArrowFormatError(f"cannot deserialize type {dtype!r}")


def write_batch(out: io.BytesIO, batch: RecordBatch) -> None:
    """Append one record batch to an open stream."""
    out.write(_BATCH_MARKER)
    out.write(struct.pack("<q", batch.num_rows))
    for column in batch.columns:
        _write_array(out, column)


def write_table(table: Table) -> bytes:
    """Serialize a whole table (schema header + batches + end marker)."""
    out = io.BytesIO()
    out.write(MAGIC)
    header = json.dumps(table.schema.to_json()).encode("utf-8")
    out.write(struct.pack("<i", len(header)))
    out.write(header)
    for batch in table.batches:
        write_batch(out, batch)
    out.write(_END_MARKER)
    return out.getvalue()


def write_file(table: Table) -> bytes:
    """Serialize a table in the *file* format: stream body + footer.

    The footer records each batch's byte offset, enabling random access —
    the property the Arrow file (Feather) format adds over the stream.
    Layout::

        FILE_MAGIC  <stream-format body without end marker>
        footer: batch offsets (i64 each)  batch count:i32
                footer length:i32  FILE_MAGIC
    """
    out = io.BytesIO()
    out.write(FILE_MAGIC)
    header = json.dumps(table.schema.to_json()).encode("utf-8")
    out.write(struct.pack("<i", len(header)))
    out.write(header)
    offsets = []
    for batch in table.batches:
        offsets.append(out.tell())
        write_batch(out, batch)
    footer_start = out.tell()
    for offset in offsets:
        out.write(struct.pack("<q", offset))
    out.write(struct.pack("<i", len(offsets)))
    # Footer length covers offsets + count + this length field (not the
    # trailing magic), so readers locate footer_start from the file tail.
    out.write(struct.pack("<i", out.tell() + 4 - footer_start))
    out.write(FILE_MAGIC)
    return out.getvalue()


def _file_footer(raw: bytes) -> tuple[Schema, list[int]]:
    if len(raw) < 2 * len(FILE_MAGIC) + 8 or not raw.startswith(FILE_MAGIC):
        raise ArrowFormatError("not a repro Arrow file")
    if not raw.endswith(FILE_MAGIC):
        raise ArrowFormatError("truncated Arrow file (missing trailing magic)")
    (footer_len,) = struct.unpack_from("<i", raw, len(raw) - len(FILE_MAGIC) - 4)
    footer_start = len(raw) - len(FILE_MAGIC) - footer_len
    if footer_start < len(FILE_MAGIC):
        raise ArrowFormatError("corrupt Arrow file footer")
    (count,) = struct.unpack_from("<i", raw, len(raw) - len(FILE_MAGIC) - 8)
    if count < 0 or footer_start + count * 8 > len(raw):
        raise ArrowFormatError("corrupt Arrow file footer")
    offsets = [
        struct.unpack_from("<q", raw, footer_start + i * 8)[0] for i in range(count)
    ]
    stream = io.BytesIO(raw)
    _read_exact(stream, len(FILE_MAGIC))
    (header_len,) = struct.unpack("<i", _read_exact(stream, 4))
    if header_len < 0:
        raise ArrowFormatError("negative schema header length")
    try:
        schema = Schema.from_json(json.loads(_read_exact(stream, header_len)))
    except ArrowFormatError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ArrowFormatError(f"corrupt schema header: {exc}") from exc
    return schema, offsets


def read_file_batch(raw: bytes, index: int) -> RecordBatch:
    """Random access: read only batch ``index`` from a file image."""
    schema, offsets = _file_footer(raw)
    if not 0 <= index < len(offsets):
        raise ArrowFormatError(
            f"batch index {index} out of range [0, {len(offsets)})"
        )
    stream = io.BytesIO(raw)
    stream.seek(offsets[index])
    if _read_exact(stream, 4) != _BATCH_MARKER:
        raise ArrowFormatError("footer offset does not point at a batch")
    (num_rows,) = struct.unpack("<q", _read_exact(stream, 8))
    columns = [_read_array(stream, field.dtype, num_rows) for field in schema]
    return RecordBatch(schema, columns)


def read_file(raw: bytes) -> Table:
    """Read a whole file image back into a table."""
    schema, offsets = _file_footer(raw)
    return Table(schema, [read_file_batch(raw, i) for i in range(len(offsets))])


def file_batch_count(raw: bytes) -> int:
    """Number of batches recorded in a file image's footer."""
    return len(_file_footer(raw)[1])


def read_table(raw: bytes) -> Table:
    """Parse a stream produced by :func:`write_table`."""
    stream = io.BytesIO(raw)
    if _read_exact(stream, len(MAGIC)) != MAGIC:
        raise ArrowFormatError("bad magic: not a repro IPC stream")
    (header_len,) = struct.unpack("<i", _read_exact(stream, 4))
    if header_len < 0:
        raise ArrowFormatError("negative schema header length")
    try:
        schema = Schema.from_json(json.loads(_read_exact(stream, header_len)))
    except ArrowFormatError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ArrowFormatError(f"corrupt schema header: {exc}") from exc
    batches = []
    while True:
        marker = _read_exact(stream, 4)
        if marker == _END_MARKER:
            break
        if marker != _BATCH_MARKER:
            raise ArrowFormatError(f"unexpected marker {marker!r}")
        (num_rows,) = struct.unpack("<q", _read_exact(stream, 8))
        columns = [_read_array(stream, field.dtype, num_rows) for field in schema]
        batches.append(RecordBatch(schema, columns))
    return Table(schema, batches)
