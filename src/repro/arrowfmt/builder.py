"""Incremental builders producing canonical Arrow arrays.

Builders accumulate Python or numpy values and ``finish()`` into immutable
arrays with properly aligned buffers.  The transformation pipeline's gather
phase uses these to produce the contiguous varlen buffers Arrow requires.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from repro.arrowfmt.array import DictionaryArray, FixedSizeArray, VarBinaryArray
from repro.arrowfmt.buffer import Bitmap, Buffer
from repro.arrowfmt.datatypes import (
    BOOL,
    DataType,
    DictionaryType,
    FixedWidthType,
    INT32,
    UTF8,
    VarBinaryType,
)
from repro.errors import ArrowFormatError


class FixedSizeBuilder:
    """Builds a :class:`FixedSizeArray` one value at a time."""

    def __init__(self, dtype: FixedWidthType) -> None:
        self.dtype = dtype
        self._values: list[Any] = []
        self._valid: list[bool] = []

    def append(self, value: Any) -> "FixedSizeBuilder":
        """Append a value, or ``None`` for null."""
        if value is None:
            self._values.append(0)
            self._valid.append(False)
        else:
            self._values.append(value)
            self._valid.append(True)
        return self

    def extend(self, values: Iterable[Any]) -> "FixedSizeBuilder":
        """Append many values."""
        for value in values:
            self.append(value)
        return self

    def __len__(self) -> int:
        return len(self._values)

    def finish(self) -> FixedSizeArray:
        """Produce the immutable array and reset the builder."""
        data = np.array(self._values, dtype=self.dtype.numpy_dtype)
        validity = None
        if not all(self._valid):
            validity = Bitmap.from_numpy(np.array(self._valid, dtype=bool))
        array = FixedSizeArray(self.dtype, len(data), Buffer.from_numpy(data), validity)
        self._values, self._valid = [], []
        return array


class VarBinaryBuilder:
    """Builds a :class:`VarBinaryArray` with a single contiguous values buffer."""

    def __init__(self, dtype: VarBinaryType = UTF8) -> None:
        self.dtype = dtype
        self._chunks: list[bytes] = []
        self._lengths: list[int] = []
        self._valid: list[bool] = []

    def append(self, value: str | bytes | None) -> "VarBinaryBuilder":
        """Append a string/bytes value, or ``None`` for null."""
        if value is None:
            self._lengths.append(0)
            self._valid.append(False)
            return self
        raw = value.encode("utf-8") if isinstance(value, str) else bytes(value)
        self._chunks.append(raw)
        self._lengths.append(len(raw))
        self._valid.append(True)
        return self

    def extend(self, values: Iterable[str | bytes | None]) -> "VarBinaryBuilder":
        """Append many values."""
        for value in values:
            self.append(value)
        return self

    def __len__(self) -> int:
        return len(self._lengths)

    def finish(self) -> VarBinaryArray:
        """Produce the immutable array and reset the builder."""
        offsets = np.zeros(len(self._lengths) + 1, dtype=np.int32)
        np.cumsum(self._lengths, out=offsets[1:])
        values = Buffer.from_bytes(b"".join(self._chunks))
        validity = None
        if not all(self._valid):
            validity = Bitmap.from_numpy(np.array(self._valid, dtype=bool))
        array = VarBinaryArray(
            self.dtype, len(self._lengths), Buffer.from_numpy(offsets), values, validity
        )
        self._chunks, self._lengths, self._valid = [], [], []
        return array


class DictionaryBuilder:
    """Builds a :class:`DictionaryArray` with a sorted dictionary.

    The paper's dictionary-compression gather sorts the distinct values
    (Section 4.4) so that codes are order-preserving; we do the same.
    """

    def __init__(self, value_type: VarBinaryType = UTF8) -> None:
        self.dtype = DictionaryType(INT32, value_type)
        self._values: list[bytes | None] = []

    def append(self, value: str | bytes | None) -> "DictionaryBuilder":
        """Append a value, or ``None`` for null."""
        if value is None:
            self._values.append(None)
        else:
            self._values.append(
                value.encode("utf-8") if isinstance(value, str) else bytes(value)
            )
        return self

    def extend(self, values: Iterable[str | bytes | None]) -> "DictionaryBuilder":
        """Append many values."""
        for value in values:
            self.append(value)
        return self

    def __len__(self) -> int:
        return len(self._values)

    def finish(self) -> DictionaryArray:
        """Sort distinct values, assign codes, and emit the array."""
        distinct = sorted({v for v in self._values if v is not None})
        code_of = {v: i for i, v in enumerate(distinct)}
        codes = np.array(
            [code_of.get(v, 0) for v in self._values], dtype=np.int32
        )
        valid = np.array([v is not None for v in self._values], dtype=bool)
        validity = None if valid.all() else Bitmap.from_numpy(valid)
        dictionary = VarBinaryBuilder(self.dtype.value_type).extend(distinct).finish()
        code_array = FixedSizeArray(INT32, len(codes), Buffer.from_numpy(codes), validity)
        array = DictionaryArray(self.dtype, code_array, dictionary, validity)
        self._values = []
        return array


def array_from_pylist(values: Sequence[Any], dtype: DataType) -> "FixedSizeArray | VarBinaryArray | DictionaryArray":
    """Convenience constructor: build an array of ``dtype`` from a list."""
    if isinstance(dtype, FixedWidthType):
        return FixedSizeBuilder(dtype).extend(values).finish()
    if isinstance(dtype, VarBinaryType):
        return VarBinaryBuilder(dtype).extend(values).finish()
    if isinstance(dtype, DictionaryType):
        if not isinstance(dtype.value_type, VarBinaryType):
            raise ArrowFormatError("only varbinary dictionaries are supported")
        return DictionaryBuilder(dtype.value_type).extend(values).finish()
    raise ArrowFormatError(f"cannot build arrays of type {dtype!r}")
