"""Structural validation of Arrow arrays and batches.

The export layer hands out buffers that alias live storage; this validator
is the self-check that what leaves the engine is *well-formed Arrow*:
buffer sizes match lengths, offsets are monotone and in-bounds, dictionary
codes resolve, validity bitmaps are long enough.  Tests run it over every
exported batch; embedders can run it as a debug assertion.
"""

from __future__ import annotations

import numpy as np

from repro.arrowfmt.array import (
    Array,
    DictionaryArray,
    FixedSizeArray,
    SlicedArray,
    VarBinaryArray,
)
from repro.arrowfmt.table import RecordBatch, Table
from repro.errors import ArrowFormatError


def validate_array(array: Array) -> None:
    """Raise :class:`ArrowFormatError` on any structural violation."""
    if array.length < 0:
        raise ArrowFormatError("negative array length")
    if array.validity is not None and array.validity.length < array.length:
        raise ArrowFormatError(
            f"validity bitmap ({array.validity.length} bits) shorter than "
            f"array ({array.length})"
        )
    if isinstance(array, SlicedArray):
        validate_array(array.parent)
        return
    if isinstance(array, FixedSizeArray):
        needed = array.length * array.dtype.byte_width
        if array.values.size < needed:
            raise ArrowFormatError(
                f"values buffer ({array.values.size} B) shorter than "
                f"{array.length} x {array.dtype.byte_width} B"
            )
        return
    if isinstance(array, VarBinaryArray):
        offsets = array.offsets_numpy()
        if len(offsets) != array.length + 1:
            raise ArrowFormatError("offsets buffer must hold length + 1 entries")
        if array.length:
            if offsets[0] != 0:
                raise ArrowFormatError("first offset must be 0")
            if np.any(np.diff(offsets) < 0):
                raise ArrowFormatError("offsets must be non-decreasing")
            if offsets[-1] > array.values.size:
                raise ArrowFormatError("final offset exceeds values buffer")
        return
    if isinstance(array, DictionaryArray):
        validate_array(array.dictionary)
        codes = array.codes.to_numpy()
        if array.length:
            valid = (
                array.validity.to_numpy()[: array.length]
                if array.validity is not None
                else np.ones(array.length, dtype=bool)
            )
            live_codes = codes[: array.length][valid]
            if live_codes.size and (
                live_codes.min() < 0 or live_codes.max() >= array.dictionary.length
            ):
                raise ArrowFormatError("dictionary code out of range")
        return
    raise ArrowFormatError(f"unknown array type {type(array).__name__}")


def validate_batch(batch: RecordBatch) -> None:
    """Validate every column of a batch plus batch-level invariants."""
    if len(batch.schema) != len(batch.columns):
        raise ArrowFormatError("schema/column count mismatch")
    for field, column in zip(batch.schema, batch.columns):
        if len(column) != batch.num_rows:
            raise ArrowFormatError(
                f"column {field.name!r} length {len(column)} != batch "
                f"rows {batch.num_rows}"
            )
        validate_array(column)
        if not field.nullable and column.null_count:
            raise ArrowFormatError(f"nulls in non-nullable column {field.name!r}")


def validate_table(table: Table) -> None:
    """Validate every batch of a table."""
    for batch in table.batches:
        if batch.schema != table.schema:
            raise ArrowFormatError("batch schema drifted from table schema")
        validate_batch(batch)
