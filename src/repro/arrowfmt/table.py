"""Record batches and tables: schema-ordered collections of arrays."""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.arrowfmt.array import Array, total_buffer_bytes
from repro.arrowfmt.datatypes import Schema
from repro.errors import ArrowFormatError


class RecordBatch:
    """A set of equal-length arrays matching a schema.

    In the storage engine every frozen 1 MB block maps to one record batch;
    the export layer ships batches, not whole tables, so that cold blocks
    can move with zero copies while hot blocks are materialized lazily.
    """

    def __init__(self, schema: Schema, columns: Sequence[Array]) -> None:
        if len(schema) != len(columns):
            raise ArrowFormatError(
                f"schema has {len(schema)} fields but {len(columns)} columns given"
            )
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise ArrowFormatError(f"column lengths differ: {sorted(lengths)}")
        for field, column in zip(schema, columns):
            if column.dtype != field.dtype:
                raise ArrowFormatError(
                    f"column {field.name!r} has type {column.dtype!r}, "
                    f"schema says {field.dtype!r}"
                )
            if not field.nullable and column.null_count:
                raise ArrowFormatError(
                    f"non-nullable column {field.name!r} contains nulls"
                )
        self.schema = schema
        self.columns = list(columns)
        self.num_rows = len(columns[0]) if columns else 0

    def column(self, name: str) -> Array:
        """Look up a column by field name."""
        return self.columns[self.schema.index_of(name)]

    def nbytes(self) -> int:
        """Total physical buffer bytes across all columns."""
        return sum(total_buffer_bytes(c) for c in self.columns)

    def row(self, i: int) -> tuple:
        """Materialize row ``i`` as a tuple (used by row-wire protocols)."""
        return tuple(c[i] for c in self.columns)

    def to_pydict(self) -> dict[str, list]:
        """Materialize as ``{column name: list of values}``."""
        return {
            field.name: column.to_pylist()
            for field, column in zip(self.schema, self.columns)
        }

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:
        return f"RecordBatch(rows={self.num_rows}, columns={self.schema.names})"


class Table:
    """An ordered sequence of record batches sharing one schema."""

    def __init__(self, schema: Schema, batches: Sequence[RecordBatch] = ()) -> None:
        for batch in batches:
            if batch.schema != schema:
                raise ArrowFormatError("batch schema does not match table schema")
        self.schema = schema
        self.batches = list(batches)

    @classmethod
    def from_batches(cls, batches: Sequence[RecordBatch]) -> "Table":
        """Build a table from a non-empty batch list."""
        if not batches:
            raise ArrowFormatError("need at least one batch")
        return cls(batches[0].schema, batches)

    @property
    def num_rows(self) -> int:
        """Total rows across batches."""
        return sum(b.num_rows for b in self.batches)

    def nbytes(self) -> int:
        """Total physical buffer bytes across batches."""
        return sum(b.nbytes() for b in self.batches)

    def append_batch(self, batch: RecordBatch) -> None:
        """Add a batch, validating its schema."""
        if batch.schema != self.schema:
            raise ArrowFormatError("batch schema does not match table schema")
        self.batches.append(batch)

    def column_values(self, name: str) -> list:
        """All values of one column, concatenated across batches."""
        values: list[Any] = []
        for batch in self.batches:
            values.extend(batch.column(name).to_pylist())
        return values

    def iter_rows(self) -> Iterator[tuple]:
        """Yield every row as a tuple, batch by batch."""
        for batch in self.batches:
            for i in range(batch.num_rows):
                yield batch.row(i)

    def to_pydict(self) -> dict[str, list]:
        """Materialize the whole table as a column dict."""
        return {name: self.column_values(name) for name in self.schema.names}

    def select(self, column_names: Sequence[str]) -> "Table":
        """Zero-copy projection onto a subset of columns."""
        indices = [self.schema.index_of(name) for name in column_names]
        schema = Schema([self.schema.fields[i] for i in indices])
        batches = [
            RecordBatch(schema, [batch.columns[i] for i in indices])
            for batch in self.batches
        ]
        return Table(schema, batches)

    def slice(self, offset: int, length: int) -> "Table":
        """Zero-copy row window ``[offset, offset + length)`` across batches."""
        from repro.arrowfmt.array import slice_array

        if offset < 0 or length < 0 or offset + length > self.num_rows:
            raise ArrowFormatError(
                f"slice [{offset}, {offset + length}) out of bounds for "
                f"{self.num_rows} rows"
            )
        batches = []
        remaining = length
        cursor = offset
        for batch in self.batches:
            if remaining == 0:
                break
            if cursor >= batch.num_rows:
                cursor -= batch.num_rows
                continue
            take = min(batch.num_rows - cursor, remaining)
            batches.append(
                RecordBatch(
                    self.schema,
                    [slice_array(c, cursor, take) for c in batch.columns],
                )
            )
            remaining -= take
            cursor = 0
        return Table(self.schema, batches)

    @staticmethod
    def concat(tables: Sequence["Table"]) -> "Table":
        """Concatenate tables of identical schema (batches are shared)."""
        if not tables:
            raise ArrowFormatError("cannot concatenate zero tables")
        schema = tables[0].schema
        batches = []
        for table in tables:
            if table.schema != schema:
                raise ArrowFormatError("mismatched schemas in concat")
            batches.extend(table.batches)
        return Table(schema, batches)

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:
        return (
            f"Table(rows={self.num_rows}, batches={len(self.batches)}, "
            f"columns={self.schema.names})"
        )
