"""Immutable Arrow arrays: fixed-size, variable-length binary, dictionary.

An array is a logical sequence of values over one or more physical buffers
plus an optional validity bitmap.  Arrays are read-only once constructed —
the transactional engine mutates the *relaxed* block format instead, and the
transformation pipeline emits these canonical arrays for cold data.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

import numpy as np

from repro.arrowfmt.buffer import Bitmap, Buffer
from repro.arrowfmt.datatypes import (
    DataType,
    DictionaryType,
    FixedWidthType,
    VarBinaryType,
)
from repro.errors import ArrowFormatError


class Array:
    """Base class for all arrays."""

    dtype: DataType
    length: int
    validity: Bitmap | None

    def is_valid(self, i: int) -> bool:
        """Whether slot ``i`` holds a (non-null) value."""
        self._check(i)
        return self.validity is None or self.validity.get(i)

    @property
    def null_count(self) -> int:
        """Number of null slots; part of Arrow's array metadata."""
        if self.validity is None:
            return 0
        return self.length - self.validity.count_set()

    def buffers(self) -> list[Buffer | None]:
        """Physical buffers in Arrow order (validity first)."""
        raise NotImplementedError

    def to_pylist(self) -> list:
        """Materialize into a plain Python list (``None`` for nulls)."""
        return [self[i] for i in range(self.length)]

    def __len__(self) -> int:
        return self.length

    def __iter__(self) -> Iterator:
        return (self[i] for i in range(self.length))

    def __getitem__(self, i: int) -> Any:
        raise NotImplementedError

    def _check(self, i: int) -> None:
        if not 0 <= i < self.length:
            raise ArrowFormatError(f"index {i} out of range [0, {self.length})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Array):
            return NotImplemented
        return (
            self.dtype == other.dtype
            and self.length == other.length
            and self.to_pylist() == other.to_pylist()
        )


class FixedSizeArray(Array):
    """An array of fixed-width values over a single values buffer."""

    def __init__(
        self,
        dtype: FixedWidthType,
        length: int,
        values: Buffer,
        validity: Bitmap | None = None,
    ) -> None:
        if not isinstance(dtype, FixedWidthType):
            raise ArrowFormatError(f"{dtype!r} is not fixed-width")
        if values.size < length * dtype.byte_width:
            raise ArrowFormatError("values buffer too small for array length")
        if validity is not None and validity.length < length:
            raise ArrowFormatError("validity bitmap shorter than array")
        self.dtype = dtype
        self.length = length
        self.values = values
        self.validity = validity

    @classmethod
    def from_numpy(
        cls, array: np.ndarray, dtype: FixedWidthType, validity: Bitmap | None = None
    ) -> "FixedSizeArray":
        """Zero-copy wrap of a C-contiguous numpy array."""
        if array.dtype != dtype.numpy_dtype:
            array = array.astype(dtype.numpy_dtype)
        return cls(dtype, len(array), Buffer.from_numpy(array), validity)

    def to_numpy(self) -> np.ndarray:
        """Zero-copy typed view of the values buffer (nulls not masked)."""
        return self.values.typed_view(self.dtype.numpy_dtype, 0, self.length)

    def buffers(self) -> list[Buffer | None]:
        validity_buf = self.validity.buffer if self.validity is not None else None
        return [validity_buf, self.values]

    def to_pylist(self) -> list:
        """Bulk materialization: one vectorized pass, not per-value access."""
        if self.dtype.numpy_dtype.kind == "V":
            return [self[i] for i in range(self.length)]
        values = self.to_numpy().tolist()
        if self.dtype.name == "bool":
            values = [bool(v) for v in values]
        if self.validity is not None:
            mask = self.validity.to_numpy()[: self.length]
            values = [v if ok else None for v, ok in zip(values, mask)]
        return values

    def __getitem__(self, i: int) -> Any:
        if not self.is_valid(i):
            return None
        value = self.to_numpy()[i]
        if self.dtype.name == "bool":
            return bool(value)
        return value.item()


class VarBinaryArray(Array):
    """Variable-length values: int32 offsets into a contiguous byte buffer.

    This is the layout of Figure 3 in the paper: ``offsets[i+1] - offsets[i]``
    is the length of value ``i``.  Updating a value in place requires
    rewriting the entire values buffer — the write amplification that
    motivates the relaxed in-block format.
    """

    def __init__(
        self,
        dtype: VarBinaryType,
        length: int,
        offsets: Buffer,
        values: Buffer,
        validity: Bitmap | None = None,
    ) -> None:
        if not isinstance(dtype, VarBinaryType):
            raise ArrowFormatError(f"{dtype!r} is not a varbinary type")
        if offsets.size < (length + 1) * 4:
            raise ArrowFormatError("offsets buffer must hold length + 1 int32s")
        self.dtype = dtype
        self.length = length
        self.offsets = offsets
        self.values = values
        self.validity = validity
        offs = self.offsets_numpy()
        if length and (np.any(np.diff(offs) < 0) or offs[0] != 0):
            raise ArrowFormatError("offsets must be non-decreasing and start at 0")
        if length and offs[-1] > values.size:
            raise ArrowFormatError("final offset exceeds values buffer")

    def offsets_numpy(self) -> np.ndarray:
        """Zero-copy int32 view of the offsets buffer."""
        return self.offsets.typed_view(np.dtype("int32"), 0, self.length + 1)

    def value_bytes(self, i: int) -> bytes | None:
        """The raw bytes of value ``i`` (``None`` if null)."""
        if not self.is_valid(i):
            return None
        offs = self.offsets_numpy()
        return self.values.view(int(offs[i]), int(offs[i + 1] - offs[i])).tobytes()

    def buffers(self) -> list[Buffer | None]:
        validity_buf = self.validity.buffer if self.validity is not None else None
        return [validity_buf, self.offsets, self.values]

    def to_pylist(self) -> list:
        """Bulk materialization: one bytes copy + sliced decodes."""
        offsets = self.offsets_numpy().tolist()
        raw = self.values.view(0, offsets[-1] if self.length else 0).tobytes()
        decode = self.dtype.is_utf8
        values: list[Any] = []
        for i in range(self.length):
            chunk = raw[offsets[i] : offsets[i + 1]]
            values.append(chunk.decode("utf-8") if decode else chunk)
        if self.validity is not None:
            mask = self.validity.to_numpy()[: self.length]
            values = [v if ok else None for v, ok in zip(values, mask)]
        return values

    def __getitem__(self, i: int) -> Any:
        raw = self.value_bytes(i)
        if raw is None:
            return None
        return raw.decode("utf-8") if self.dtype.is_utf8 else raw


class DictionaryArray(Array):
    """Dictionary-encoded values: integer codes plus a value dictionary.

    This is the alternative cold format of Section 4.4, matching the
    dictionary compression found in Parquet and ORC.  The dictionary is a
    sorted :class:`VarBinaryArray`; codes index into it.
    """

    def __init__(
        self,
        dtype: DictionaryType,
        codes: FixedSizeArray,
        dictionary: Array,
        validity: Bitmap | None = None,
    ) -> None:
        if not isinstance(dtype, DictionaryType):
            raise ArrowFormatError(f"{dtype!r} is not a dictionary type")
        if codes.dtype != dtype.index_type:
            raise ArrowFormatError("code array type does not match dictionary index type")
        self.dtype = dtype
        self.length = codes.length
        self.codes = codes
        self.dictionary = dictionary
        self.validity = validity if validity is not None else codes.validity

    @property
    def dictionary_size(self) -> int:
        """Number of distinct values in the dictionary."""
        return self.dictionary.length

    def buffers(self) -> list[Buffer | None]:
        validity_buf = self.validity.buffer if self.validity is not None else None
        return [validity_buf, self.codes.values, *[
            b for b in self.dictionary.buffers() if b is not None
        ]]

    def to_pylist(self) -> list:
        """Bulk materialization: decode the dictionary once, map codes.

        Codes under null slots are never inspected (builders zero them, but
        foreign data may not).
        """
        words = self.dictionary.to_pylist()
        codes = self.codes.to_numpy().tolist()
        size = self.dictionary.length
        mask = (
            self.validity.to_numpy()[: self.length]
            if self.validity is not None
            else None
        )
        values: list[Any] = []
        for i, code in enumerate(codes[: self.length]):
            if mask is not None and not mask[i]:
                values.append(None)
                continue
            if not 0 <= code < size:
                raise ArrowFormatError(f"dictionary code {code} out of range")
            values.append(words[code])
        return values

    def __getitem__(self, i: int) -> Any:
        if not self.is_valid(i):
            return None
        code = int(self.codes.to_numpy()[i])
        if not 0 <= code < self.dictionary.length:
            raise ArrowFormatError(f"dictionary code {code} out of range")
        return self.dictionary[code]


class SlicedArray(Array):
    """A zero-copy window ``[offset, offset + length)`` over another array.

    Arrow slices share buffers with their parent; only the logical bounds
    change.  Used by readers that want a row range without materializing.
    """

    def __init__(self, parent: Array, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > parent.length:
            raise ArrowFormatError(
                f"slice [{offset}, {offset + length}) out of bounds for "
                f"array of length {parent.length}"
            )
        self.parent = parent
        self.dtype = parent.dtype
        self.offset = offset
        self.length = length
        self.validity = None  # validity is consulted through the parent

    def is_valid(self, i: int) -> bool:
        self._check(i)
        return self.parent.is_valid(self.offset + i)

    @property
    def null_count(self) -> int:
        return sum(1 for i in range(self.length) if not self.is_valid(i))

    def buffers(self) -> list[Buffer | None]:
        return self.parent.buffers()

    def __getitem__(self, i: int):
        self._check(i)
        return self.parent[self.offset + i]


def slice_array(array: Array, offset: int, length: int) -> SlicedArray:
    """Zero-copy slice of any array (flattens nested slices)."""
    if isinstance(array, SlicedArray):
        return SlicedArray(array.parent, array.offset + offset, length)
    return SlicedArray(array, offset, length)


def total_buffer_bytes(array: Array) -> int:
    """Sum of the physical buffer sizes backing ``array``.

    Used by the export layer to account for bytes shipped over the wire in
    zero-copy protocols.
    """
    return sum(b.size for b in array.buffers() if b is not None)


def concat_varbinary(arrays: Sequence[VarBinaryArray]) -> VarBinaryArray:
    """Concatenate several varbinary arrays into one canonical array."""
    if not arrays:
        raise ArrowFormatError("cannot concatenate zero arrays")
    dtype = arrays[0].dtype
    if any(a.dtype != dtype for a in arrays):
        raise ArrowFormatError("mismatched dtypes in concatenation")
    from repro.arrowfmt.builder import VarBinaryBuilder

    builder = VarBinaryBuilder(dtype)
    for array in arrays:
        for i in range(array.length):
            builder.append(array.value_bytes(i))
    return builder.finish()
