"""Logical types, fields, and schemas for the Arrow format layer.

The Arrow specification separates *logical types* (what a value means) from
the *physical layout* (which buffers hold it).  This module covers the types
the storage engine needs: fixed-width primitives, variable-length binary /
UTF-8 strings, and dictionary encoding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.errors import ArrowFormatError


class DataType:
    """Base class for all logical types.

    Types are immutable value objects: equality is structural and instances
    are safe to share between schemas.
    """

    name: str = "type"

    #: Number of buffers backing an array of this type (excluding validity).
    num_buffers: int = 1

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))

    def __repr__(self) -> str:
        return self.name


class FixedWidthType(DataType):
    """A type whose values occupy a fixed number of bytes."""

    def __init__(self, name: str, byte_width: int, numpy_dtype: str) -> None:
        self.name = name
        self.byte_width = byte_width
        self.numpy_dtype = np.dtype(numpy_dtype)

    def to_json(self) -> dict:
        """Serializable description used by the IPC schema header."""
        return {"kind": "fixed", "name": self.name}


class BoolType(FixedWidthType):
    """Booleans stored one byte per value.

    The Arrow spec bit-packs booleans; we store one byte per value to keep
    in-place transactional updates atomic (the paper's engine relies on
    aligned stores being atomic, Section 4.3).  The IPC layer is free to
    re-pack; nothing in this reproduction depends on the packed layout.
    """

    def __init__(self) -> None:
        super().__init__("bool", 1, "uint8")

    def to_json(self) -> dict:
        return {"kind": "bool", "name": self.name}


class FixedBinaryType(FixedWidthType):
    """Opaque fixed-width byte strings.

    Used by the row-store simulation of Figure 11: a "row" is one wide
    fixed-length attribute holding all fields contiguously.
    """

    def __init__(self, byte_width: int) -> None:
        if byte_width < 1:
            raise ArrowFormatError("fixed binary width must be positive")
        super().__init__(f"fixed_binary[{byte_width}]", byte_width, f"V{byte_width}")

    def to_json(self) -> dict:
        return {"kind": "fixed_binary", "width": self.byte_width}


class VarBinaryType(DataType):
    """Variable-length binary data: 32-bit offsets into a values buffer."""

    num_buffers = 2

    def __init__(self, name: str = "binary", is_utf8: bool = False) -> None:
        self.name = name
        self.is_utf8 = is_utf8

    def to_json(self) -> dict:
        return {"kind": "varbinary", "name": self.name, "utf8": self.is_utf8}


class DictionaryType(DataType):
    """Dictionary encoding: integer codes referencing a value dictionary."""

    def __init__(self, index_type: FixedWidthType, value_type: DataType) -> None:
        if not isinstance(index_type, FixedWidthType):
            raise ArrowFormatError("dictionary index type must be fixed-width")
        self.name = f"dictionary<{index_type.name}, {value_type.name}>"
        self.index_type = index_type
        self.value_type = value_type

    def to_json(self) -> dict:
        return {
            "kind": "dictionary",
            "index": self.index_type.to_json(),
            "value": self.value_type.to_json(),
        }


INT8 = FixedWidthType("int8", 1, "int8")
INT16 = FixedWidthType("int16", 2, "int16")
INT32 = FixedWidthType("int32", 4, "int32")
INT64 = FixedWidthType("int64", 8, "int64")
UINT8 = FixedWidthType("uint8", 1, "uint8")
UINT16 = FixedWidthType("uint16", 2, "uint16")
UINT32 = FixedWidthType("uint32", 4, "uint32")
UINT64 = FixedWidthType("uint64", 8, "uint64")
FLOAT32 = FixedWidthType("float32", 4, "float32")
FLOAT64 = FixedWidthType("float64", 8, "float64")
BOOL = BoolType()
BINARY = VarBinaryType("binary", is_utf8=False)
UTF8 = VarBinaryType("utf8", is_utf8=True)

_TYPES_BY_NAME: dict[str, DataType] = {
    t.name: t
    for t in (
        INT8, INT16, INT32, INT64,
        UINT8, UINT16, UINT32, UINT64,
        FLOAT32, FLOAT64, BOOL, BINARY, UTF8,
    )
}


def type_from_json(spec: dict) -> DataType:
    """Inverse of ``DataType.to_json`` — used when parsing IPC headers."""
    kind = spec.get("kind")
    if kind in ("fixed", "bool", "varbinary"):
        try:
            return _TYPES_BY_NAME[spec["name"]]
        except KeyError:
            raise ArrowFormatError(f"unknown type name {spec['name']!r}") from None
    if kind == "fixed_binary":
        return FixedBinaryType(spec["width"])
    if kind == "dictionary":
        index = type_from_json(spec["index"])
        value = type_from_json(spec["value"])
        if not isinstance(index, FixedWidthType):
            raise ArrowFormatError("dictionary index must be fixed-width")
        return DictionaryType(index, value)
    raise ArrowFormatError(f"unknown type kind {kind!r}")


@dataclass(frozen=True)
class Field:
    """A named, typed, possibly-nullable column in a schema."""

    name: str
    dtype: DataType
    nullable: bool = True

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "type": self.dtype.to_json(),
            "nullable": self.nullable,
        }

    @staticmethod
    def from_json(spec: dict) -> "Field":
        return Field(spec["name"], type_from_json(spec["type"]), spec["nullable"])


@dataclass(frozen=True)
class Schema:
    """An ordered collection of fields describing a table.

    Mirrors the example of Figure 2 in the paper, where a SQL table's schema
    is described through Arrow's type system.
    """

    fields: tuple[Field, ...]
    metadata: tuple[tuple[str, str], ...] = field(default_factory=tuple)

    def __init__(
        self,
        fields: Sequence[Field],
        metadata: dict[str, str] | None = None,
    ) -> None:
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise ArrowFormatError(f"duplicate field names in schema: {names}")
        object.__setattr__(self, "fields", tuple(fields))
        object.__setattr__(
            self, "metadata", tuple(sorted((metadata or {}).items()))
        )

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self) -> Iterator[Field]:
        return iter(self.fields)

    @property
    def names(self) -> list[str]:
        """Field names in schema order."""
        return [f.name for f in self.fields]

    def field(self, name: str) -> Field:
        """Look up a field by name, raising :class:`ArrowFormatError` if absent."""
        for f in self.fields:
            if f.name == name:
                return f
        raise ArrowFormatError(f"no field named {name!r}")

    def index_of(self, name: str) -> int:
        """Return the position of the field called ``name``."""
        for i, f in enumerate(self.fields):
            if f.name == name:
                return i
        raise ArrowFormatError(f"no field named {name!r}")

    def to_json(self) -> dict:
        return {
            "fields": [f.to_json() for f in self.fields],
            "metadata": dict(self.metadata),
        }

    @staticmethod
    def from_json(spec: dict) -> "Schema":
        return Schema(
            [Field.from_json(f) for f in spec["fields"]],
            metadata=spec.get("metadata") or None,
        )
