"""Aligned byte buffers and validity bitmaps.

Arrow requires all buffers to be 8-byte aligned and padded to a multiple of
8 bytes so that vectorized readers can process them without peeling loops.
:class:`Buffer` enforces both properties; :class:`Bitmap` implements Arrow's
LSB-first validity bitmaps on top of a :class:`Buffer`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ArrowFormatError

ALIGNMENT = 8


def _padded(nbytes: int) -> int:
    """Round ``nbytes`` up to the Arrow alignment boundary."""
    return (nbytes + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


class Buffer:
    """A contiguous, 8-byte padded region of memory backed by numpy.

    ``size`` is the logical number of meaningful bytes; the backing store may
    be longer because of padding.  Slicing (:meth:`view`) is zero-copy.
    """

    __slots__ = ("_data", "size")

    def __init__(self, data: np.ndarray, size: int | None = None) -> None:
        if data.dtype != np.uint8 or data.ndim != 1:
            raise ArrowFormatError("Buffer requires a 1-D uint8 array")
        self._data = data
        self.size = len(data) if size is None else size
        if self.size > len(data):
            raise ArrowFormatError("logical size exceeds backing store")

    @classmethod
    def allocate(cls, nbytes: int) -> "Buffer":
        """Allocate a zeroed buffer of ``nbytes`` logical bytes (padded)."""
        if nbytes < 0:
            raise ArrowFormatError("cannot allocate a negative-size buffer")
        return cls(np.zeros(_padded(nbytes), dtype=np.uint8), nbytes)

    @classmethod
    def from_bytes(cls, raw: bytes | bytearray | memoryview) -> "Buffer":
        """Copy ``raw`` into a new aligned buffer."""
        buf = cls.allocate(len(raw))
        if len(raw):
            buf._data[: len(raw)] = np.frombuffer(raw, dtype=np.uint8)
        return buf

    @classmethod
    def from_numpy(cls, array: np.ndarray) -> "Buffer":
        """Wrap a numpy array's memory without copying.

        The array must be C-contiguous; its bytes become the buffer content.
        """
        if not array.flags["C_CONTIGUOUS"]:
            raise ArrowFormatError("from_numpy requires a C-contiguous array")
        flat = array.view(np.uint8).reshape(-1)
        return cls(flat, flat.nbytes)

    @property
    def data(self) -> np.ndarray:
        """The backing uint8 array (padding included)."""
        return self._data

    def to_bytes(self) -> bytes:
        """Copy the logical content out as immutable bytes."""
        return self._data[: self.size].tobytes()

    def view(self, offset: int = 0, length: int | None = None) -> np.ndarray:
        """Zero-copy uint8 view of ``[offset, offset + length)``."""
        if length is None:
            length = self.size - offset
        if offset < 0 or length < 0 or offset + length > self.size:
            raise ArrowFormatError(
                f"view [{offset}, {offset + length}) out of bounds for size {self.size}"
            )
        return self._data[offset : offset + length]

    def typed_view(self, numpy_dtype: np.dtype, offset: int = 0, count: int | None = None) -> np.ndarray:
        """Zero-copy view reinterpreted as ``numpy_dtype`` elements."""
        dtype = np.dtype(numpy_dtype)
        if offset % dtype.alignment:
            raise ArrowFormatError(
                f"offset {offset} not aligned for dtype {dtype}"
            )
        if count is None:
            count = (self.size - offset) // dtype.itemsize
        nbytes = count * dtype.itemsize
        return self.view(offset, nbytes).view(dtype)

    def __len__(self) -> int:
        return self.size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Buffer):
            return NotImplemented
        return self.size == other.size and bool(
            np.array_equal(self._data[: self.size], other._data[: other.size])
        )

    def __repr__(self) -> str:
        return f"Buffer(size={self.size})"


class Bitmap:
    """An Arrow validity bitmap: bit ``i`` set means slot ``i`` is valid.

    Bits are LSB-first within each byte, per the Arrow specification.  The
    same structure doubles as the storage engine's *allocation bitmap*
    (which slots in a block contain live tuples).
    """

    __slots__ = ("buffer", "length")

    def __init__(self, buffer: Buffer, length: int) -> None:
        if buffer.size * 8 < length:
            raise ArrowFormatError("bitmap buffer too small for its length")
        self.buffer = buffer
        self.length = length

    @classmethod
    def allocate(cls, length: int, all_set: bool = False) -> "Bitmap":
        """Create a bitmap of ``length`` bits, all clear (or all set)."""
        nbytes = (length + 7) // 8
        bitmap = cls(Buffer.allocate(nbytes), length)
        if all_set and length:
            bitmap.buffer.data[:nbytes] = 0xFF
            # Clear trailing padding bits so popcounts stay exact.
            extra = nbytes * 8 - length
            if extra:
                bitmap.buffer.data[nbytes - 1] &= 0xFF >> extra
        return bitmap

    def get(self, i: int) -> bool:
        """Return bit ``i``."""
        self._check(i)
        return bool(self.buffer.data[i >> 3] & (1 << (i & 7)))

    def set(self, i: int, value: bool = True) -> None:
        """Set bit ``i`` to ``value``."""
        self._check(i)
        if value:
            self.buffer.data[i >> 3] |= 1 << (i & 7)
        else:
            self.buffer.data[i >> 3] &= ~(1 << (i & 7)) & 0xFF

    def clear(self, i: int) -> None:
        """Clear bit ``i``."""
        self.set(i, False)

    def count_set(self) -> int:
        """Population count over the whole bitmap."""
        return int(np.unpackbits(self._logical_bytes(), bitorder="little")[: self.length].sum())

    def to_numpy(self) -> np.ndarray:
        """Expand into a boolean array of length ``length``."""
        return np.unpackbits(self._logical_bytes(), bitorder="little")[: self.length].astype(bool)

    def set_indices(self) -> np.ndarray:
        """Indices of all set bits, ascending."""
        return np.nonzero(self.to_numpy())[0]

    def clear_indices(self) -> np.ndarray:
        """Indices of all clear bits, ascending."""
        return np.nonzero(~self.to_numpy())[0]

    @classmethod
    def from_numpy(cls, mask: np.ndarray) -> "Bitmap":
        """Pack a boolean array into a bitmap."""
        packed = np.packbits(mask.astype(np.uint8), bitorder="little")
        buf = Buffer.allocate(len(packed))
        buf.data[: len(packed)] = packed
        return cls(buf, len(mask))

    def _logical_bytes(self) -> np.ndarray:
        return self.buffer.data[: (self.length + 7) // 8]

    def _check(self, i: int) -> None:
        if not 0 <= i < self.length:
            raise ArrowFormatError(f"bit index {i} out of range [0, {self.length})")

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return f"Bitmap(length={self.length}, set={self.count_set()})"
