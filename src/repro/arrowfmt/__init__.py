"""From-scratch implementation of the Arrow columnar memory format.

This subpackage implements the parts of the Apache Arrow specification that
the paper's storage engine relies on:

- 8-byte aligned buffers and validity bitmaps (:mod:`repro.arrowfmt.buffer`),
- the logical type system (:mod:`repro.arrowfmt.datatypes`),
- fixed-size, variable-length binary, and dictionary-encoded arrays
  (:mod:`repro.arrowfmt.array`),
- incremental builders (:mod:`repro.arrowfmt.builder`),
- record batches and tables (:mod:`repro.arrowfmt.table`), and
- a binary IPC stream encoding (:mod:`repro.arrowfmt.ipc`) used by the
  export layer to ship data with no per-value serialization.

It deliberately does **not** depend on ``pyarrow``: implementing the format
is part of reproducing the paper, whose storage blocks *are* Arrow buffers.
"""

from repro.arrowfmt.buffer import Bitmap, Buffer
from repro.arrowfmt.datatypes import (
    BOOL,
    FLOAT32,
    FLOAT64,
    INT8,
    INT16,
    INT32,
    INT64,
    UINT8,
    UINT16,
    UINT32,
    UINT64,
    UTF8,
    DataType,
    DictionaryType,
    Field,
    FixedWidthType,
    Schema,
    VarBinaryType,
)
from repro.arrowfmt.array import Array, DictionaryArray, FixedSizeArray, VarBinaryArray
from repro.arrowfmt.builder import (
    DictionaryBuilder,
    FixedSizeBuilder,
    VarBinaryBuilder,
    array_from_pylist,
)
from repro.arrowfmt.table import RecordBatch, Table
from repro.arrowfmt.ipc import read_table, write_table

__all__ = [
    "Array",
    "Bitmap",
    "BOOL",
    "Buffer",
    "DataType",
    "DictionaryArray",
    "DictionaryBuilder",
    "DictionaryType",
    "Field",
    "FixedSizeArray",
    "FixedSizeBuilder",
    "FixedWidthType",
    "FLOAT32",
    "FLOAT64",
    "INT8",
    "INT16",
    "INT32",
    "INT64",
    "RecordBatch",
    "Schema",
    "Table",
    "UINT8",
    "UINT16",
    "UINT32",
    "UINT64",
    "UTF8",
    "VarBinaryArray",
    "VarBinaryBuilder",
    "VarBinaryType",
    "array_from_pylist",
    "read_table",
    "write_table",
]
