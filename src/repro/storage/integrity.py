"""Whole-database physical integrity checking.

The storage engine's analogue of ``PRAGMA integrity_check``: walks every
block of every table and verifies the invariants the rest of the system
assumes —

- varlen entries of live, non-null slots resolve (no dangling heap ids, no
  out-of-bounds gathered references),
- version-chain records point back at their own block and slot,
- FROZEN blocks are dense prefixes with version-free slots whose Arrow
  views validate structurally,
- zone maps (when present) bound the live values they claim to.

Returns findings rather than raising, so callers can assert emptiness in
tests or log in production.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.storage.constants import BlockState
from repro.storage.varlen import read_entry

if TYPE_CHECKING:
    from repro.db import Database
    from repro.storage.block import RawBlock
    from repro.storage.data_table import DataTable


@dataclass
class IntegrityReport:
    """Findings from one integrity pass (empty = healthy)."""

    findings: list[str] = field(default_factory=list)
    blocks_checked: int = 0
    frozen_blocks_validated: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def add(self, message: str) -> None:
        self.findings.append(message)


def check_table(table: "DataTable") -> IntegrityReport:
    """Run every check over one table."""
    report = IntegrityReport()
    for block in list(table.blocks):
        report.blocks_checked += 1
        _check_varlen_entries(table, block, report)
        _check_version_chains(table, block, report)
        if block.state is BlockState.FROZEN:
            _check_frozen(table, block, report)
    return report


def check_database(db: "Database") -> IntegrityReport:
    """Run every check over every catalog table."""
    merged = IntegrityReport()
    for name in db.catalog.table_names():
        report = check_table(db.catalog.table(name))
        merged.findings.extend(f"{name}: {f}" for f in report.findings)
        merged.blocks_checked += report.blocks_checked
        merged.frozen_blocks_validated += report.frozen_blocks_validated
    return merged


def _check_varlen_entries(table, block: "RawBlock", report: IntegrityReport) -> None:
    for column_id in table.layout.varlen_column_ids():
        heap = block.varlen_heaps[column_id]
        live_ids = heap.live_ids()
        gathered = block.gathered.get(column_id)
        gathered_size = len(gathered[1]) if gathered is not None else 0
        for offset in block.live_slots():
            if not block.validity_bitmaps[column_id].get(int(offset)):
                continue
            entry = read_entry(block.varlen_entry_view(column_id, int(offset)))
            if entry.is_inlined:
                continue
            if entry.pointer >= 0:
                if entry.pointer not in live_ids:
                    report.add(
                        f"block {block.block_id} col {column_id} slot {offset}: "
                        f"dangling heap id {entry.pointer}"
                    )
            else:
                end = -entry.pointer - 1 + entry.size
                if end > gathered_size:
                    report.add(
                        f"block {block.block_id} col {column_id} slot {offset}: "
                        f"gathered reference [{-entry.pointer - 1}, {end}) beyond "
                        f"buffer of {gathered_size} bytes"
                    )


def _check_version_chains(table, block: "RawBlock", report: IntegrityReport) -> None:
    for offset, record in enumerate(block.version_ptrs):
        seen = 0
        node = record
        while node is not None:
            if node.slot.block_id != block.block_id or node.slot.offset != offset:
                report.add(
                    f"block {block.block_id} slot {offset}: chain record points "
                    f"at {node.slot}"
                )
                break
            seen += 1
            if seen > 1_000_000:
                report.add(f"block {block.block_id} slot {offset}: chain cycle")
                break
            node = node.next


def _check_frozen(table, block: "RawBlock", report: IntegrityReport) -> None:
    from repro.arrowfmt.validate import validate_batch
    from repro.errors import ReproError
    from repro.transform.arrow_view import block_to_record_batch

    live = block.live_slots()
    n = len(live)
    if n and (live[0] != 0 or live[-1] != n - 1):
        report.add(f"frozen block {block.block_id}: live slots are not a dense prefix")
        return
    if block.has_active_versions():
        report.add(f"frozen block {block.block_id}: version chains present")
    try:
        batch = block_to_record_batch(block)
        validate_batch(batch)
        report.frozen_blocks_validated += 1
    except ReproError as exc:
        report.add(f"frozen block {block.block_id}: arrow view invalid: {exc}")
        return
    for column_id, (low, high) in block.zone_maps.items():
        if not n:
            continue
        mask = block.validity_bitmaps[column_id].to_numpy()[:n]
        values = block.column_view(column_id)[:n][mask]
        if len(values) and (values.min() < low or values.max() > high):
            report.add(
                f"frozen block {block.block_id} col {column_id}: zone map "
                f"({low}, {high}) does not bound values "
                f"[{values.min()}, {values.max()}]"
            )
