"""Physiological tuple identifiers (Section 3.2, Figure 5).

A :class:`TupleSlot` packs the identity of a block and a logical offset
within it into a single 64-bit integer.  The paper achieves this by aligning
blocks at 1 MB boundaries so a block *pointer*'s low 20 bits are zero; a
Python process cannot place objects at chosen addresses, so we substitute a
dense block id for the pointer's high bits.  The packing math — and the
invariant that the offset fits in the low 20 bits — is identical.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageError
from repro.storage.constants import OFFSET_BITS

_OFFSET_MASK = (1 << OFFSET_BITS) - 1
_MAX_BLOCK_ID = (1 << (64 - OFFSET_BITS)) - 1


@dataclass(frozen=True, order=True)
class TupleSlot:
    """A (block id, offset) pair addressable as one 64-bit value."""

    block_id: int
    offset: int

    def __post_init__(self) -> None:
        if not 0 <= self.offset <= _OFFSET_MASK:
            raise StorageError(
                f"offset {self.offset} does not fit in {OFFSET_BITS} bits"
            )
        if not 0 <= self.block_id <= _MAX_BLOCK_ID:
            raise StorageError(f"block id {self.block_id} out of range")

    def pack(self) -> int:
        """Encode into a single 64-bit integer (Fig. 5)."""
        return (self.block_id << OFFSET_BITS) | self.offset

    @classmethod
    def unpack(cls, value: int) -> "TupleSlot":
        """Decode a value produced by :meth:`pack`."""
        if not 0 <= value < (1 << 64):
            raise StorageError(f"{value} is not a 64-bit TupleSlot value")
        return cls(value >> OFFSET_BITS, value & _OFFSET_MASK)

    def __repr__(self) -> str:
        return f"TupleSlot(block={self.block_id}, offset={self.offset})"
