"""Block layouts: slot counts and column offsets (Section 3.2).

Every block of a table shares one :class:`BlockLayout`, computed once when
the table is created.  The layout records (1) the number of tuple slots per
block, (2) each attribute's size, and (3) the byte offset of each column
region (and its validity bitmap) from the head of the block.  Combined with
a :class:`~repro.storage.tuple_slot.TupleSlot`, this lets the engine compute
the address of any attribute in constant time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arrowfmt.datatypes import DataType, FixedWidthType, VarBinaryType
from repro.errors import StorageError
from repro.storage.constants import (
    BLOCK_HEADER_SIZE,
    BLOCK_SIZE,
    COLUMN_ALIGNMENT,
    VARLEN_ENTRY_SIZE,
)


def _pad(nbytes: int) -> int:
    return (nbytes + COLUMN_ALIGNMENT - 1) // COLUMN_ALIGNMENT * COLUMN_ALIGNMENT


@dataclass(frozen=True)
class ColumnSpec:
    """One attribute of a table: a name and an Arrow logical type."""

    name: str
    dtype: DataType

    @property
    def is_varlen(self) -> bool:
        """Whether values are stored as relaxed 16-byte VarlenEntries."""
        return isinstance(self.dtype, VarBinaryType)

    @property
    def attr_size(self) -> int:
        """Bytes occupied per slot inside a block."""
        if isinstance(self.dtype, FixedWidthType):
            return self.dtype.byte_width
        if isinstance(self.dtype, VarBinaryType):
            return VARLEN_ENTRY_SIZE
        raise StorageError(f"type {self.dtype!r} cannot be stored in a block")


class BlockLayout:
    """Precomputed physical layout shared by all blocks of a table."""

    def __init__(
        self,
        columns: list[ColumnSpec],
        block_size: int = BLOCK_SIZE,
    ) -> None:
        if not columns:
            raise StorageError("a layout needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise StorageError(f"duplicate column names: {names}")
        self.columns = list(columns)
        self.block_size = block_size
        self.attr_sizes = [c.attr_size for c in columns]
        self.num_slots = self._solve_capacity()
        if self.num_slots < 1:
            raise StorageError(
                f"tuple of {sum(self.attr_sizes)} bytes does not fit in a "
                f"{block_size}-byte block"
            )
        self._compute_offsets()

    @property
    def num_columns(self) -> int:
        """Number of user-visible columns (the version pointer column the
        transaction engine adds is not part of the physical layout)."""
        return len(self.columns)

    @property
    def tuple_size(self) -> int:
        """Bytes per tuple across all column regions (bitmaps excluded)."""
        return sum(self.attr_sizes)

    def varlen_column_ids(self) -> list[int]:
        """Indices of columns stored as VarlenEntries."""
        return [i for i, c in enumerate(self.columns) if c.is_varlen]

    def fixed_column_ids(self) -> list[int]:
        """Indices of fixed-width columns."""
        return [i for i, c in enumerate(self.columns) if not c.is_varlen]

    def index_of(self, name: str) -> int:
        """Position of the column called ``name``."""
        for i, column in enumerate(self.columns):
            if column.name == name:
                return i
        raise StorageError(f"no column named {name!r}")

    def layout_key(self) -> tuple:
        """Hashable identity used to group blocks for compaction; blocks may
        only be compacted together when their layouts are identical."""
        return tuple((c.name, c.dtype.name) for c in self.columns) + (self.block_size,)

    def _bitmap_bytes(self, slots: int) -> int:
        return _pad((slots + 7) // 8)

    def _bytes_for(self, slots: int) -> int:
        total = BLOCK_HEADER_SIZE + self._bitmap_bytes(slots)
        for size in self.attr_sizes:
            total += self._bitmap_bytes(slots) + _pad(slots * size)
        return total

    def _solve_capacity(self) -> int:
        low, high = 0, self.block_size * 8
        while low < high:
            mid = (low + high + 1) // 2
            if self._bytes_for(mid) <= self.block_size:
                low = mid
            else:
                high = mid - 1
        return low

    def _compute_offsets(self) -> None:
        slots = self.num_slots
        cursor = BLOCK_HEADER_SIZE
        self.allocation_bitmap_offset = cursor
        cursor += self._bitmap_bytes(slots)
        self.validity_offsets: list[int] = []
        self.column_offsets: list[int] = []
        for size in self.attr_sizes:
            self.validity_offsets.append(cursor)
            cursor += self._bitmap_bytes(slots)
            self.column_offsets.append(cursor)
            cursor += _pad(slots * size)
        self.used_bytes = cursor
        if cursor > self.block_size:
            raise StorageError("layout overflows block (internal error)")

    def attribute_offset(self, column_id: int, slot: int) -> int:
        """Byte offset of attribute ``column_id`` of tuple ``slot`` — the
        constant-time address computation of Section 3.2."""
        if not 0 <= slot < self.num_slots:
            raise StorageError(f"slot {slot} out of range [0, {self.num_slots})")
        return self.column_offsets[column_id] + slot * self.attr_sizes[column_id]

    def __repr__(self) -> str:
        return (
            f"BlockLayout(columns={[c.name for c in self.columns]}, "
            f"slots={self.num_slots})"
        )
