"""Storage-engine constants and the block state machine."""

from __future__ import annotations

import enum

#: Block size in bytes.  The paper uses 1 MB blocks aligned at 1 MB
#: boundaries so that a block pointer's low 20 bits are always zero (Fig. 5).
BLOCK_SIZE = 1 << 20

#: Bits of a TupleSlot reserved for the offset within the block.  There can
#: never be more tuples than bytes in a block, so 20 bits suffice.
OFFSET_BITS = 20

#: Bytes reserved at the head of every block for the header (layout id,
#: state flag, insert head, padding to an 8-byte boundary).
BLOCK_HEADER_SIZE = 64

#: Size of the relaxed variable-length value representation (Fig. 6):
#: 4-byte size + 4-byte prefix + 8-byte pointer, padded to 16 bytes.
VARLEN_ENTRY_SIZE = 16

#: Values no longer than this are stored entirely inside the VarlenEntry
#: (prefix + pointer fields), avoiding any out-of-line buffer.
VARLEN_INLINE_LIMIT = 12

#: Alignment for every column region and bitmap inside a block.
COLUMN_ALIGNMENT = 8


class BlockState(enum.IntEnum):
    """The hot/cold state machine of Section 4 (Figures 7 and 9).

    - ``HOT``: the block may contain versioned tuples and relaxed varlen
      entries; readers must materialize through the transaction engine.
    - ``COOLING``: the transformation thread intends to lock the block; user
      transactions may preempt by CAS-ing the flag back to ``HOT``.
    - ``FREEZING``: exclusive lock held by the transformation thread for the
      short gather critical section; transactional writes must wait/retry.
    - ``FROZEN``: the block is canonical Arrow; readers access it in place
      under a reader counter, and the first transactional write flips it
      back to ``HOT`` after waiting for lingering readers.
    """

    HOT = 0
    COOLING = 1
    FREEZING = 2
    FROZEN = 3
