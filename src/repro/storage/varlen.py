"""Relaxed variable-length value storage (Section 4.1, Figure 6).

Each variable-length attribute occupies a fixed 16-byte ``VarlenEntry``
inside the block:

====== ===== ========================================================
bytes  field meaning
====== ===== ========================================================
0–3    size  length of the value in bytes (sign bit = ownership flag)
4–7    prefix first 4 bytes of the value, for fast filtering
8–15   pointer out-of-line reference, or bytes 4–15 of an inlined value
====== ===== ========================================================

Values of at most 12 bytes are stored entirely within the entry (prefix +
pointer fields).  Longer values live out of line; in C++ the pointer field
holds a raw address, here it holds an id into the owning block's *varlen
heap* (a Python-level map id → bytes), or — after the gather phase — a
negative offset into the block's canonical Arrow values buffer, which
models the paper's "buffer ownership" bit: entries that reference gathered
storage do not own their bytes.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import StorageError
from repro.storage.constants import VARLEN_ENTRY_SIZE, VARLEN_INLINE_LIMIT

_HEADER = struct.Struct("<i4s8s")  # size, prefix, pointer-or-inline-suffix
_POINTER = struct.Struct("<q")


class VarlenEntry:
    """Decoded view of one 16-byte varlen entry.

    ``pointer`` semantics:

    - value inlined (``size <= 12``): pointer bytes hold the value suffix;
    - ``pointer >= 0``: id into the block's varlen heap (entry owns bytes);
    - ``pointer < 0``: ``-(offset + 1)`` into the block's gathered Arrow
      values buffer for this column (entry does not own bytes).
    """

    __slots__ = ("size", "prefix", "pointer", "inline_payload")

    def __init__(
        self,
        size: int,
        prefix: bytes,
        pointer: int = 0,
        inline_payload: bytes | None = None,
    ) -> None:
        self.size = size
        self.prefix = prefix
        self.pointer = pointer
        self.inline_payload = inline_payload

    @property
    def is_inlined(self) -> bool:
        """Whether the full value lives inside the 16-byte entry."""
        return self.size <= VARLEN_INLINE_LIMIT

    @property
    def owns_buffer(self) -> bool:
        """Whether the entry owns its out-of-line bytes (heap reference)."""
        return not self.is_inlined and self.pointer >= 0


def write_entry(view: np.ndarray, value: bytes, heap: "VarlenHeap") -> None:
    """Encode ``value`` into the 16-byte region ``view``.

    Short values are inlined; longer ones are stored in ``heap`` and the
    entry keeps the heap id.  If the region previously owned a heap entry,
    the caller is responsible for freeing it (the engine defers frees to the
    garbage collector, Section 4.4).
    """
    _check_view(view)
    if len(value) <= VARLEN_INLINE_LIMIT:
        padded = value.ljust(VARLEN_INLINE_LIMIT, b"\x00")
        view[:] = np.frombuffer(
            _HEADER.pack(len(value), padded[:4], padded[4:]), dtype=np.uint8
        )
        return
    heap_id = heap.put(value)
    view[:] = np.frombuffer(
        _HEADER.pack(len(value), value[:4], _POINTER.pack(heap_id)), dtype=np.uint8
    )


def write_gathered_entry(view: np.ndarray, value_size: int, prefix: bytes, offset: int) -> None:
    """Encode an entry that references the gathered Arrow values buffer.

    Used by the gather phase: after compaction the canonical values buffer
    holds the bytes, and entries keep ``-(offset + 1)`` so transactions can
    still read values without owning them.
    """
    _check_view(view)
    if value_size <= VARLEN_INLINE_LIMIT:
        raise StorageError("short values must stay inlined, not gathered")
    view[:] = np.frombuffer(
        _HEADER.pack(value_size, prefix[:4].ljust(4, b"\x00"), _POINTER.pack(-(offset + 1))),
        dtype=np.uint8,
    )


def read_entry(view: np.ndarray) -> VarlenEntry:
    """Decode the 16-byte region ``view`` into a :class:`VarlenEntry`."""
    _check_view(view)
    size, prefix, tail = _HEADER.unpack(view.tobytes())
    if size < 0:
        raise StorageError(f"corrupt varlen entry: negative size {size}")
    if size <= VARLEN_INLINE_LIMIT:
        payload = (prefix + tail)[:size]
        return VarlenEntry(size, prefix[: min(size, 4)], 0, payload)
    (pointer,) = _POINTER.unpack(tail)
    return VarlenEntry(size, prefix, pointer)


def read_value(view: np.ndarray, heap: "VarlenHeap", gathered: bytes | np.ndarray | None) -> bytes:
    """Materialize the full value behind an entry.

    ``gathered`` is the block's canonical Arrow values buffer for this
    column (needed only for non-owning entries).
    """
    entry = read_entry(view)
    if entry.is_inlined:
        assert entry.inline_payload is not None
        return entry.inline_payload
    if entry.pointer >= 0:
        return heap.get(entry.pointer)
    offset = -entry.pointer - 1
    if gathered is None:
        raise StorageError("entry references a gathered buffer that is absent")
    raw = bytes(gathered[offset : offset + entry.size])
    if len(raw) != entry.size:
        raise StorageError("gathered buffer shorter than entry size")
    return raw


def _check_view(view: np.ndarray) -> None:
    if view.dtype != np.uint8 or view.size != VARLEN_ENTRY_SIZE:
        raise StorageError("varlen entry view must be 16 uint8 bytes")


class VarlenHeap:
    """Out-of-line storage for one varlen column of one block.

    Models the malloc'd buffers the C++ engine hangs off VarlenEntries.  Ids
    are monotonically increasing; ``free`` is explicit so the garbage
    collector can account for deferred deallocation, and double-frees are
    detected rather than ignored.
    """

    __slots__ = ("_values", "_next_id", "bytes_used")

    def __init__(self) -> None:
        self._values: dict[int, bytes] = {}
        self._next_id = 0
        self.bytes_used = 0

    def put(self, value: bytes) -> int:
        """Store ``value`` and return its heap id."""
        heap_id = self._next_id
        self._next_id += 1
        self._values[heap_id] = bytes(value)
        self.bytes_used += len(value)
        return heap_id

    def get(self, heap_id: int) -> bytes:
        """Fetch the bytes behind ``heap_id``."""
        try:
            return self._values[heap_id]
        except KeyError:
            raise StorageError(f"dangling varlen heap id {heap_id}") from None

    def free(self, heap_id: int) -> None:
        """Release one entry; freeing an unknown id is an error."""
        try:
            self.bytes_used -= len(self._values.pop(heap_id))
        except KeyError:
            raise StorageError(f"double free of varlen heap id {heap_id}") from None

    def __len__(self) -> int:
        return len(self._values)

    def live_ids(self) -> set[int]:
        """Ids currently allocated (used by leak-checking tests)."""
        return set(self._values)
