"""Per-block and per-table memory accounting.

Quantifies what the cold formats buy: the relaxed format's out-of-line
heap bytes versus the gathered contiguous buffer versus the dictionary
encoding (whose win grows with value repetition — the reason Parquet and
ORC default to it, Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.storage.block import RawBlock
    from repro.storage.data_table import DataTable


@dataclass
class BlockMemoryReport:
    """Byte accounting for one block."""

    block_id: int
    state: str
    block_bytes: int
    varlen_heap_bytes: int
    gathered_bytes: int
    dictionary_bytes: int
    live_tuples: int

    @property
    def total_bytes(self) -> int:
        """Block buffer + every companion structure."""
        return (
            self.block_bytes
            + self.varlen_heap_bytes
            + self.gathered_bytes
            + self.dictionary_bytes
        )


def block_memory(block: "RawBlock") -> BlockMemoryReport:
    """Account one block's memory."""
    heap_bytes = sum(h.bytes_used for h in block.varlen_heaps.values())
    gathered = sum(
        offsets.nbytes + values.nbytes for offsets, values in block.gathered.values()
    )
    dictionary = sum(
        codes.nbytes + sum(len(w) for w in words)
        for codes, words in block.dictionaries.values()
    )
    return BlockMemoryReport(
        block_id=block.block_id,
        state=block.state.name,
        block_bytes=block.layout.block_size,
        varlen_heap_bytes=heap_bytes,
        gathered_bytes=gathered,
        dictionary_bytes=dictionary,
        live_tuples=int(block.allocation_bitmap.count_set()),
    )


@dataclass
class TableMemoryReport:
    """Aggregated accounting for a whole table."""

    blocks: list[BlockMemoryReport]

    @property
    def total_bytes(self) -> int:
        return sum(b.total_bytes for b in self.blocks)

    @property
    def varlen_heap_bytes(self) -> int:
        return sum(b.varlen_heap_bytes for b in self.blocks)

    @property
    def gathered_bytes(self) -> int:
        return sum(b.gathered_bytes for b in self.blocks)

    @property
    def dictionary_bytes(self) -> int:
        return sum(b.dictionary_bytes for b in self.blocks)

    @property
    def live_tuples(self) -> int:
        return sum(b.live_tuples for b in self.blocks)


def table_memory(table: "DataTable") -> TableMemoryReport:
    """Account every block of ``table``."""
    return TableMemoryReport([block_memory(b) for b in table.blocks])
