"""1 MB storage blocks with the hot/cold state machine (Sections 3.2, 4.1).

A :class:`RawBlock` owns a single contiguous 1 MB byte buffer laid out PAX
style: an allocation bitmap, then per column a validity bitmap followed by
the column's value region, everything 8-byte aligned.  Fixed-length column
regions are *always* valid Arrow buffers; varlen regions hold relaxed
16-byte entries until the gather phase writes the canonical offsets/values
buffers, which the block keeps alongside.

Transactional metadata stays out of the Arrow-visible buffer: the version
pointer "column" is a parallel object array (a C++ engine would store raw
pointers; Python must hold object references), so external readers of the
buffer never see versioning state — the minimally-intrusive design of
Section 3.1.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.arrowfmt.buffer import Bitmap, Buffer
from repro.errors import BlockStateError, StorageError
from repro.obs.recorder import broadcast as _record_event
from repro.storage.constants import BlockState, VARLEN_ENTRY_SIZE
from repro.storage.layout import BlockLayout
from repro.storage.varlen import VarlenHeap


class RawBlock:
    """One block of a table: buffer, bitmaps, state, and version pointers."""

    def __init__(self, layout: BlockLayout, block_id: int) -> None:
        self.layout = layout
        self.block_id = block_id
        self.buffer = Buffer.allocate(layout.block_size)
        #: Parallel (Arrow-invisible) version-pointer column: one undo-record
        #: reference per slot, ``None`` when the tuple has no versions.
        self.version_ptrs: list[Any] = [None] * layout.num_slots
        #: Out-of-line varlen storage, one heap per varlen column.
        self.varlen_heaps: dict[int, VarlenHeap] = {
            col: VarlenHeap() for col in layout.varlen_column_ids()
        }
        #: Canonical Arrow data per varlen column, present once the block has
        #: been gathered: ``col -> (offsets ndarray, values ndarray)``.
        self.gathered: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        #: Dictionary-compressed data per varlen column (the alternative
        #: format of Section 4.4): ``col -> (codes ndarray, sorted words)``.
        self.dictionaries: dict[int, tuple[np.ndarray, list[bytes]]] = {}
        #: Zone maps computed during the gather alongside Arrow's metadata:
        #: ``col -> (min, max)`` over live non-null fixed-width values.
        #: Only trustworthy while the block is FROZEN.
        self.zone_maps: dict[int, tuple[float, float]] = {}
        #: Write-side zone maps for scans over non-frozen blocks:
        #: ``col -> [min, max]`` widened on every in-place write (under the
        #: write latch) and never narrowed, so they conservatively cover
        #: every value any snapshot could see — in place *or* on a version
        #: chain (before-images were themselves once written in place).
        #: Seeded from the frozen maps on a FROZEN→HOT transition, cleared
        #: when a gather recomputes the exact frozen maps.
        self.hot_zone_maps: dict[int, list[float]] = {}
        #: Columns eligible for zone maps (numeric fixed-width).
        self.zone_eligible = frozenset(
            column_id
            for column_id in layout.fixed_column_ids()
            if layout.columns[column_id].dtype.numpy_dtype.kind in "iuf"  # type: ignore[union-attr]
        )
        self._state = BlockState.HOT
        self._state_lock = threading.Lock()
        self._reader_count = 0
        self._readers_done = threading.Condition(self._state_lock)
        #: Coarse-grained latch serializing version-chain installation and
        #: in-place writes within this block (stands in for the paper's
        #: atomic compare-and-swap on the version pointer).
        self.write_latch = threading.RLock()
        self._insert_head = 0
        #: GC-epoch timestamp of the last observed modification (Section 4.2).
        self.last_modified_epoch = 0
        #: Logical timestamp of the last transition to FROZEN (0 = never);
        #: drives incremental export ("blocks frozen since cursor X").
        self.frozen_at = 0
        #: Shared-memory placement of the frozen payload, if any — a
        #: :class:`repro.parallel.placement.BlockDescriptor` written by the
        #: transformer at freeze time.  Only trustworthy while FROZEN with a
        #: matching ``frozen_at`` (checked under the frozen-read pin).
        self.shm_descriptor: Any = None
        self.allocation_bitmap = Bitmap(
            self._region(layout.allocation_bitmap_offset, self._bitmap_nbytes()),
            layout.num_slots,
        )
        self.validity_bitmaps = [
            Bitmap(self._region(off, self._bitmap_nbytes()), layout.num_slots)
            for off in layout.validity_offsets
        ]

    # ------------------------------------------------------------------ #
    # state machine                                                       #
    # ------------------------------------------------------------------ #

    @property
    def state(self) -> BlockState:
        """Current block state (racy read, like the paper's unfenced load)."""
        return self._state

    def compare_and_swap_state(self, expected: BlockState, new: BlockState) -> bool:
        """Atomically transition ``expected -> new``; return success."""
        with self._state_lock:
            if self._state is not expected:
                return False
            self._state = new
            if new is not BlockState.FROZEN:
                # Waking writers blocked on the reader count is harmless.
                self._readers_done.notify_all()
            return True

    def set_state(self, new: BlockState) -> None:
        """Unconditional transition (used by the transformer when it already
        holds exclusive access)."""
        with self._state_lock:
            self._state = new
            self._readers_done.notify_all()

    def begin_frozen_read(self) -> bool:
        """Try to enter the block as an in-place Arrow reader.

        Returns ``False`` when the block is not frozen — the caller must
        materialize through the transaction engine instead (Section 4.1).
        """
        with self._state_lock:
            if self._state is not BlockState.FROZEN:
                return False
            self._reader_count += 1
            return True

    def end_frozen_read(self) -> None:
        """Leave the block; wakes writers spinning on the reader counter."""
        with self._state_lock:
            if self._reader_count <= 0:
                raise BlockStateError("end_frozen_read without matching begin")
            self._reader_count -= 1
            if self._reader_count == 0:
                self._readers_done.notify_all()

    @property
    def reader_count(self) -> int:
        """Number of in-place readers currently inside the block."""
        return self._reader_count

    def wait_for_readers(self, timeout: float | None = None) -> bool:
        """Block until all in-place readers have left (writer-side spin)."""
        with self._state_lock:
            return self._readers_done.wait_for(
                lambda: self._reader_count == 0, timeout=timeout
            )

    def touch_hot(self) -> None:
        """Transition FROZEN/COOLING back to HOT before a transactional write.

        Implements the writer protocol of Section 4.1: flip the status flag
        so future readers materialize, then wait for lingering in-place
        readers to leave.  A COOLING block is preempted directly (Section
        4.3); a FREEZING block makes the writer wait until the gather
        critical section ends.
        """
        while True:
            state = self._state
            if state is BlockState.HOT:
                return
            if state is BlockState.FROZEN:
                if self.compare_and_swap_state(BlockState.FROZEN, BlockState.HOT):
                    # The gathered Arrow companions become *stale* (exports
                    # must materialize now) but are kept alive: relaxed
                    # varlen entries may still point into them until the
                    # next gather rewrites every entry.
                    _record_event(
                        "block.reheated", block_id=self.block_id, from_state="FROZEN"
                    )
                    self._seed_hot_zone_maps()
                    self.wait_for_readers()
                    return
            elif state is BlockState.COOLING:
                if self.compare_and_swap_state(BlockState.COOLING, BlockState.HOT):
                    _record_event(
                        "block.preempted", block_id=self.block_id, from_state="COOLING"
                    )
                    return
            else:  # FREEZING: wait out the short critical section.
                with self._state_lock:
                    self._readers_done.wait_for(
                        lambda: self._state is not BlockState.FREEZING, timeout=1.0
                    )

    def _seed_hot_zone_maps(self) -> None:
        """Fold the (exact) frozen zone maps into the widen-only hot maps
        so a reheated block stays prunable.  Widens under the write latch
        — concurrent writers widen there too, so no update is lost."""
        with self.write_latch:
            for column_id, (low, high) in self.zone_maps.items():
                zone = self.hot_zone_maps.get(column_id)
                if zone is None:
                    self.hot_zone_maps[column_id] = [low, high]
                else:
                    if low < zone[0]:
                        zone[0] = low
                    if high > zone[1]:
                        zone[1] = high

    # ------------------------------------------------------------------ #
    # physical access                                                     #
    # ------------------------------------------------------------------ #

    def column_view(self, column_id: int) -> np.ndarray:
        """Typed zero-copy view over a fixed-width column region."""
        spec = self.layout.columns[column_id]
        if spec.is_varlen:
            raise StorageError(f"column {spec.name!r} is varlen; use varlen views")
        return self.buffer.typed_view(
            spec.dtype.numpy_dtype,  # type: ignore[union-attr]
            self.layout.column_offsets[column_id],
            self.layout.num_slots,
        )

    def varlen_entry_view(self, column_id: int, slot: int) -> np.ndarray:
        """The 16-byte uint8 view of one varlen entry."""
        spec = self.layout.columns[column_id]
        if not spec.is_varlen:
            raise StorageError(f"column {spec.name!r} is not varlen")
        offset = self.layout.attribute_offset(column_id, slot)
        return self.buffer.view(offset, VARLEN_ENTRY_SIZE)

    def varlen_region_view(self, column_id: int) -> np.ndarray:
        """The whole varlen-entry region of a column (16 bytes per slot)."""
        spec = self.layout.columns[column_id]
        if not spec.is_varlen:
            raise StorageError(f"column {spec.name!r} is not varlen")
        return self.buffer.view(
            self.layout.column_offsets[column_id],
            self.layout.num_slots * VARLEN_ENTRY_SIZE,
        )

    def replace_gathered(
        self,
        column_id: int,
        offsets: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Install a freshly gathered Arrow companion for one column.

        The previous companion (if any) is dropped only now — after the
        gather pass has rewritten every entry that pointed into it."""
        self.gathered[column_id] = (offsets, values)

    # ------------------------------------------------------------------ #
    # slot allocation                                                     #
    # ------------------------------------------------------------------ #

    def allocate_slot(self) -> int | None:
        """Claim the next free slot, or ``None`` when the block is full.

        Insertion only moves forward; deleted slots are *not* reused here —
        the transformation pipeline recycles them during compaction
        (Section 3.3).
        """
        with self.write_latch:
            while self._insert_head < self.layout.num_slots:
                slot = self._insert_head
                self._insert_head += 1
                if not self.allocation_bitmap.get(slot):
                    self.allocation_bitmap.set(slot)
                    return slot
            return None

    def reset_insert_head(self) -> None:
        """Allow insertion to rescan from slot 0 (after compaction empties
        slots at the front of the block)."""
        with self.write_latch:
            self._insert_head = 0

    @property
    def insert_head(self) -> int:
        """Next slot the allocator will try."""
        return self._insert_head

    def live_slots(self) -> np.ndarray:
        """Indices of allocated slots."""
        return self.allocation_bitmap.set_indices()

    def empty_slot_count(self) -> int:
        """Number of unallocated slots."""
        return self.layout.num_slots - self.allocation_bitmap.count_set()

    def is_empty(self) -> bool:
        """Whether no slot is allocated."""
        return self.allocation_bitmap.count_set() == 0

    def has_active_versions(self) -> bool:
        """Whether any slot still has a version chain — the check the
        transformer runs during the COOLING scan (Section 4.3)."""
        return any(ptr is not None for ptr in self.version_ptrs)

    def _bitmap_nbytes(self) -> int:
        return (self.layout.num_slots + 7) // 8

    def _region(self, offset: int, nbytes: int) -> Buffer:
        return Buffer(self.buffer.view(offset, ((nbytes + 7) // 8) * 8), nbytes)

    def __repr__(self) -> str:
        return (
            f"RawBlock(id={self.block_id}, state={self._state.name}, "
            f"live={self.allocation_bitmap.count_set()}/{self.layout.num_slots})"
        )
