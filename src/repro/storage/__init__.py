"""Block-based storage engine: the paper's relaxed Arrow format.

Storage is organized in 1 MB PAX-style blocks (Section 3.2).  All attributes
of a tuple live in the same block; each column region and its validity
bitmap are 8-byte aligned.  Fixed-length columns are Arrow-compliant at all
times; variable-length columns use the relaxed 16-byte :class:`VarlenEntry`
representation (Section 4.1) until the transformation pipeline gathers them
into canonical Arrow buffers.
"""

from repro.storage.constants import (
    BLOCK_SIZE,
    BlockState,
    OFFSET_BITS,
    VARLEN_ENTRY_SIZE,
    VARLEN_INLINE_LIMIT,
)
from repro.storage.layout import BlockLayout, ColumnSpec
from repro.storage.tuple_slot import TupleSlot
from repro.storage.varlen import VarlenEntry
from repro.storage.block import RawBlock
from repro.storage.block_store import BlockStore
from repro.storage.projection import ProjectedRow
from repro.storage.data_table import DataTable

__all__ = [
    "BLOCK_SIZE",
    "BlockLayout",
    "BlockState",
    "BlockStore",
    "ColumnSpec",
    "DataTable",
    "OFFSET_BITS",
    "ProjectedRow",
    "RawBlock",
    "TupleSlot",
    "VARLEN_ENTRY_SIZE",
    "VARLEN_INLINE_LIMIT",
    "VarlenEntry",
]
