"""Block allocation and the block-id registry.

The C++ engine resolves a TupleSlot's block component by pointer; Python
cannot, so the :class:`BlockStore` keeps the id → block mapping.  It also
recycles raw blocks through a free list, mirroring the object pools the
paper uses for undo/redo buffer segments and blocks.
"""

from __future__ import annotations

import threading

from repro.errors import StorageError
from repro.storage.block import RawBlock
from repro.storage.layout import BlockLayout


class BlockStore:
    """Allocates :class:`RawBlock` instances and resolves block ids."""

    def __init__(self, registry=None) -> None:
        self._lock = threading.Lock()
        self._blocks: dict[int, RawBlock] = {}
        self._next_id = 0
        self._free_count = 0
        #: Shared-memory arena the released blocks' frozen payloads live in;
        #: assigned by the Database when parallel workers are enabled.
        self.arena = None
        if registry is not None:
            self._m_double_free = registry.counter(
                "storage.block_double_free_total",
                "rejected double releases of a block",
            )
        else:
            self._m_double_free = None

    def allocate(self, layout: BlockLayout) -> RawBlock:
        """Create (or reuse the identity of) a block with ``layout``."""
        with self._lock:
            block_id = self._next_id
            self._next_id += 1
            block = RawBlock(layout, block_id)
            self._blocks[block_id] = block
            return block

    def get(self, block_id: int) -> RawBlock:
        """Resolve a block id (the pointer dereference of Figure 5)."""
        try:
            return self._blocks[block_id]
        except KeyError:
            raise StorageError(f"block {block_id} is not live") from None

    def release(self, block: RawBlock) -> None:
        """Return an (empty) block to the store; its id becomes invalid.

        Double releases are rejected loudly — by identity, so a stale
        handle cannot free a *different* block that recycled the id — and
        counted in ``storage.block_double_free_total`` instead of silently
        corrupting ``freed_count``.
        """
        with self._lock:
            if self._blocks.get(block.block_id) is not block:
                if self._m_double_free is not None:
                    self._m_double_free.inc()
                raise StorageError(
                    f"block {block.block_id} already released (double free)"
                )
            if not block.is_empty():
                raise StorageError("cannot release a block with live tuples")
            del self._blocks[block.block_id]
            self._free_count += 1
        if block.shm_descriptor is not None:
            from repro.parallel.placement import release_block_slot

            release_block_slot(self.arena, block)

    @property
    def live_count(self) -> int:
        """Number of blocks currently allocated."""
        return len(self._blocks)

    @property
    def freed_count(self) -> int:
        """Number of blocks released over the store's lifetime (Fig. 14a)."""
        return self._free_count

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._blocks
