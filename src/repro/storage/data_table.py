"""The Data Table API: transactional access over blocks (Section 3.1).

The data table is the abstraction layer between the transaction engine and
raw block storage.  It materializes the correct tuple version into the
transaction on reads, installs before-image delta records on writes, and is
the only component that understands both the relaxed block format and the
version-pointer column.

Concurrency model: the C++ engine installs version-chain heads with atomic
compare-and-swap and relies on aligned 8-byte stores being atomic for
in-place updates.  Python offers neither, so each block carries a write
latch that serializes (version-pointer install + in-place write) and the
snapshot step of reads.  Chain *traversal* happens outside the latch, as in
the paper.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Iterator, Mapping

import numpy as np

from repro.arrowfmt.datatypes import VarBinaryType
from repro.errors import StorageError
from repro.storage.block import RawBlock
from repro.storage.block_store import BlockStore
from repro.storage.constants import BlockState
from repro.storage.layout import BlockLayout
from repro.storage.projection import ProjectedRow
from repro.storage.tuple_slot import TupleSlot
from repro.storage.varlen import read_entry, read_value, write_entry
from repro.txn.redo import RedoRecord
from repro.txn.undo import (
    DeleteUndoRecord,
    InsertUndoRecord,
    UndoRecord,
    UpdateUndoRecord,
)

if TYPE_CHECKING:
    from repro.txn.context import TransactionContext


class DataTable:
    """One table's tuples, spread over 1 MB blocks of a shared layout."""

    def __init__(self, block_store: BlockStore, layout: BlockLayout, name: str) -> None:
        self.block_store = block_store
        self.layout = layout
        self.name = name
        self.blocks: list[RawBlock] = []
        self._blocks_by_id: dict[int, RawBlock] = {}
        self._insert_lock = threading.Lock()
        self._insertion_block: RawBlock | None = None
        #: Listeners notified with (txn, slot, kind, new_values, old_values)
        #: after each write; index maintenance hooks in here.
        self._write_listeners: list[Any] = []
        #: Union of columns any listener needs old values for on deletes.
        self._indexed_columns: set[int] = set()

    # ------------------------------------------------------------------ #
    # public API                                                          #
    # ------------------------------------------------------------------ #

    def insert(self, txn: "TransactionContext", values: Mapping[int, Any]) -> TupleSlot:
        """Insert a tuple; returns its :class:`TupleSlot`.

        ``values`` must provide every column (``None`` for SQL NULL).  The
        insert is invisible to concurrent snapshots until commit, via an
        insert undo record whose before-image is "slot absent".
        """
        self._require_active(txn)
        txn.ensure_writable()
        missing = set(range(self.layout.num_columns)) - set(values)
        if missing:
            raise StorageError(f"insert missing columns {sorted(missing)}")
        block, offset = self._allocate_slot()
        slot = TupleSlot(block.block_id, offset)
        with block.write_latch:
            record = txn.undo_buffer.append(InsertUndoRecord(txn, self, slot))
            block.version_ptrs[offset] = record
            self._write_in_place(block, offset, values.items())
        txn.redo_buffer.append(
            RedoRecord(self.name, slot, RedoRecord.INSERT, ProjectedRow(values))
        )
        self._notify(txn, slot, "insert", dict(values), None)
        return slot

    def insert_into(
        self, txn: "TransactionContext", slot: TupleSlot, values: Mapping[int, Any]
    ) -> None:
        """Insert into a *specific* empty slot (compaction's tuple moves).

        The caller (the transformation pipeline) guarantees the slot is a
        gap; regular inserts go through :meth:`insert`, which allocates.
        Stale varlen contents left behind by a committed delete are freed
        here — this is where deleted slots are recycled (Section 3.3).
        """
        self._require_active(txn)
        block = self._block(slot.block_id)
        block.touch_hot()
        with block.write_latch:
            if block.allocation_bitmap.get(slot.offset):
                raise StorageError(f"{slot} is already allocated")
            if block.version_ptrs[slot.offset] is not None:
                raise StorageError(f"{slot} still has a version chain")
            for column_id in self.layout.varlen_column_ids():
                if block.validity_bitmaps[column_id].get(slot.offset):
                    self._free_owned_entry(block, column_id, slot.offset)
                    block.validity_bitmaps[column_id].clear(slot.offset)
            block.allocation_bitmap.set(slot.offset)
            record = txn.undo_buffer.append(InsertUndoRecord(txn, self, slot))
            block.version_ptrs[slot.offset] = record
            self._write_in_place(block, slot.offset, values.items())
        txn.redo_buffer.append(
            RedoRecord(self.name, slot, RedoRecord.INSERT, ProjectedRow(values))
        )
        self._notify(txn, slot, "insert", dict(values), None)

    def update(
        self, txn: "TransactionContext", slot: TupleSlot, delta: Mapping[int, Any]
    ) -> bool:
        """Update a subset of columns in place.

        Returns ``False`` (and marks the transaction ``must_abort``) on a
        write-write conflict — the engine disallows them outright to avoid
        cascading rollbacks (Section 3.1).
        """
        self._require_active(txn)
        txn.ensure_writable()
        if not delta:
            raise StorageError("empty update delta")
        block = self._block(slot.block_id)
        block.touch_hot()
        with block.write_latch:
            if not self._writable(txn, block, slot.offset):
                txn.must_abort = True
                return False
            column_ids = sorted(delta)
            before = self._read_in_place(block, slot.offset, column_ids)
            before_raw = self._capture_raw_varlen(block, slot.offset, column_ids)
            record = txn.undo_buffer.append(
                UpdateUndoRecord(txn, self, slot, before, before_raw)
            )
            record.next = block.version_ptrs[slot.offset]
            block.version_ptrs[slot.offset] = record
            self._write_in_place(block, slot.offset, delta.items())
        txn.redo_buffer.append(
            RedoRecord(self.name, slot, RedoRecord.UPDATE, ProjectedRow(delta))
        )
        self._notify(txn, slot, "update", dict(delta), before.to_dict())
        return True

    def delete(self, txn: "TransactionContext", slot: TupleSlot) -> bool:
        """Delete a tuple: flips its allocation bit, contents untouched."""
        self._require_active(txn)
        txn.ensure_writable()
        block = self._block(slot.block_id)
        block.touch_hot()
        with block.write_latch:
            if not self._writable(txn, block, slot.offset):
                txn.must_abort = True
                return False
            if not block.allocation_bitmap.get(slot.offset):
                raise StorageError(f"{slot} is not allocated")
            old_indexed = (
                self._read_in_place(block, slot.offset, sorted(self._indexed_columns)).to_dict()
                if self._indexed_columns
                else {}
            )
            record = txn.undo_buffer.append(DeleteUndoRecord(txn, self, slot))
            record.next = block.version_ptrs[slot.offset]
            block.version_ptrs[slot.offset] = record
            block.allocation_bitmap.clear(slot.offset)
        txn.redo_buffer.append(RedoRecord(self.name, slot, RedoRecord.DELETE, None))
        self._notify(txn, slot, "delete", None, old_indexed)
        return True

    def select(
        self,
        txn: "TransactionContext",
        slot: TupleSlot,
        column_ids: list[int] | None = None,
    ) -> ProjectedRow | None:
        """Read the version of ``slot`` visible to ``txn``.

        Returns ``None`` when the tuple does not exist in the transaction's
        snapshot.  This is the early materialization of Section 3.1: the
        newest version is copied, then invisible delta records are applied
        newest-to-oldest until a visible one is reached.
        """
        self._require_active(txn)
        block = self._block(slot.block_id)
        if column_ids is None:
            column_ids = list(range(self.layout.num_columns))
        with block.write_latch:
            present = block.allocation_bitmap.get(slot.offset)
            chain = block.version_ptrs[slot.offset]
            if not present and chain is None:
                return None
            row = self._read_in_place(block, slot.offset, column_ids)
        record = chain
        while record is not None and not record.is_visible_to(txn):
            present = record.undo_presence(present)
            record.apply_before_image(row)
            record = record.next
        return row if present else None

    def scan(
        self,
        txn: "TransactionContext",
        column_ids: list[int] | None = None,
    ) -> Iterator[tuple[TupleSlot, ProjectedRow]]:
        """Yield every tuple visible to ``txn``, block by block."""
        for block in list(self.blocks):
            for offset in range(block.insert_head):
                slot = TupleSlot(block.block_id, offset)
                if (
                    not block.allocation_bitmap.get(offset)
                    and block.version_ptrs[offset] is None
                ):
                    continue
                row = self.select(txn, slot, column_ids)
                if row is not None:
                    yield slot, row

    def add_write_listener(
        self, listener: Any, indexed_columns: set[int] | None = None
    ) -> None:
        """Register a ``listener(txn, slot, kind, new_values, old_values)``
        callable.  ``indexed_columns`` declares which columns the listener
        needs old values for when tuples are deleted (index key columns)."""
        self._write_listeners.append(listener)
        if indexed_columns:
            self._indexed_columns |= set(indexed_columns)

    # ------------------------------------------------------------------ #
    # physical helpers (shared with rollback, GC, and the transformer)    #
    # ------------------------------------------------------------------ #

    def _block(self, block_id: int) -> RawBlock:
        try:
            return self._blocks_by_id[block_id]
        except KeyError:
            raise StorageError(
                f"block {block_id} does not belong to table {self.name!r}"
            ) from None

    def _allocate_slot(self) -> tuple[RawBlock, int]:
        with self._insert_lock:
            while True:
                if self._insertion_block is not None:
                    offset = self._insertion_block.allocate_slot()
                    if offset is not None:
                        block = self._insertion_block
                        block.touch_hot()
                        return block, offset
                self._insertion_block = self.block_store.allocate(self.layout)
                self.blocks.append(self._insertion_block)
                self._blocks_by_id[self._insertion_block.block_id] = self._insertion_block

    def adopt_block(self, block: RawBlock) -> None:
        """Track a block created externally (used by the transformer when
        compaction recycles blocks within a group)."""
        if block.block_id not in self._blocks_by_id:
            self.blocks.append(block)
            self._blocks_by_id[block.block_id] = block

    def drop_block(self, block: RawBlock) -> None:
        """Stop tracking an empty block and return it to the store."""
        if block is self._insertion_block:
            self._insertion_block = None
        self.blocks.remove(block)
        del self._blocks_by_id[block.block_id]
        self.block_store.release(block)

    def _read_in_place(
        self, block: RawBlock, offset: int, column_ids: list[int]
    ) -> ProjectedRow:
        row = ProjectedRow()
        for column_id in column_ids:
            spec = self.layout.columns[column_id]
            if not block.validity_bitmaps[column_id].get(offset):
                row.set(column_id, None)
            elif spec.is_varlen:
                raw = read_value(
                    block.varlen_entry_view(column_id, offset),
                    block.varlen_heaps[column_id],
                    self._gathered_values(block, column_id),
                )
                if isinstance(spec.dtype, VarBinaryType) and spec.dtype.is_utf8:
                    row.set(column_id, raw.decode("utf-8"))
                else:
                    row.set(column_id, raw)
            else:
                value = block.column_view(column_id)[offset]
                if spec.dtype.name == "bool":
                    row.set(column_id, bool(value))
                else:
                    row.set(column_id, value.item())
        return row

    def _write_in_place(
        self, block: RawBlock, offset: int, items: Any
    ) -> None:
        for column_id, value in items:
            spec = self.layout.columns[column_id]
            if value is None:
                if not self.layout_allows_null(column_id):
                    raise StorageError(f"column {spec.name!r} does not allow NULL")
                block.validity_bitmaps[column_id].clear(offset)
                continue
            block.validity_bitmaps[column_id].set(offset)
            if spec.is_varlen:
                raw = value.encode("utf-8") if isinstance(value, str) else bytes(value)
                write_entry(
                    block.varlen_entry_view(column_id, offset),
                    raw,
                    block.varlen_heaps[column_id],
                )
            else:
                block.column_view(column_id)[offset] = value
                if column_id in block.zone_eligible:
                    zone = block.hot_zone_maps.get(column_id)
                    if zone is None:
                        block.hot_zone_maps[column_id] = [value, value]
                    elif value < zone[0]:
                        zone[0] = value
                    elif value > zone[1]:
                        zone[1] = value

    def layout_allows_null(self, column_id: int) -> bool:
        """Whether NULL may be stored in ``column_id``.

        The block format always reserves a validity bitmap; logical NOT NULL
        constraints belong to the catalog layer, so storage accepts NULLs
        everywhere.
        """
        return True

    def _capture_raw_varlen(
        self, block: RawBlock, offset: int, column_ids: list[int]
    ) -> dict[int, bytes]:
        raw: dict[int, bytes] = {}
        for column_id in column_ids:
            if self.layout.columns[column_id].is_varlen:
                raw[column_id] = block.varlen_entry_view(column_id, offset).tobytes()
        return raw

    def _gathered_values(self, block: RawBlock, column_id: int) -> np.ndarray | None:
        gathered = block.gathered.get(column_id)
        return gathered[1] if gathered is not None else None

    def _writable(self, txn: "TransactionContext", block: RawBlock, offset: int) -> bool:
        """The write-write conflict rule: the chain head must be either
        absent, ours, aborted, or committed no later than our snapshot."""
        head: UndoRecord | None = block.version_ptrs[offset]
        if head is None or head.aborted:
            return True
        if head.txn is txn:
            return True
        from repro.txn.timestamps import is_uncommitted

        if is_uncommitted(head.timestamp):
            return False
        return head.timestamp <= txn.start_ts

    def _require_active(self, txn: "TransactionContext") -> None:
        if not txn.is_active:
            raise StorageError(f"transaction is {txn.state.value}, not active")

    # ------------------------------------------------------------------ #
    # rollback hooks (called by the transaction manager)                  #
    # ------------------------------------------------------------------ #

    def rollback_update(self, record: UpdateUndoRecord) -> None:
        """Restore the before-image of an aborted update, freeing any
        out-of-line values the aborting transaction allocated."""
        block = self._block(record.slot.block_id)
        offset = record.slot.offset
        with block.write_latch:
            for column_id in record.before.column_ids:
                spec = self.layout.columns[column_id]
                if spec.is_varlen:
                    self._free_owned_entry(block, column_id, offset)
                    raw = record.before_raw[column_id]
                    block.varlen_entry_view(column_id, offset)[:] = np.frombuffer(
                        raw, dtype=np.uint8
                    )
                    before_value = record.before.get(column_id)
                    if before_value is None:
                        block.validity_bitmaps[column_id].clear(offset)
                    else:
                        block.validity_bitmaps[column_id].set(offset)
                else:
                    value = record.before.get(column_id)
                    if value is None:
                        block.validity_bitmaps[column_id].clear(offset)
                    else:
                        block.validity_bitmaps[column_id].set(offset)
                        block.column_view(column_id)[offset] = value

    def rollback_insert(self, record: InsertUndoRecord) -> None:
        """Undo an aborted insert: free its varlens, clear its bits."""
        block = self._block(record.slot.block_id)
        offset = record.slot.offset
        with block.write_latch:
            for column_id in self.layout.varlen_column_ids():
                if block.validity_bitmaps[column_id].get(offset):
                    self._free_owned_entry(block, column_id, offset)
            for column_id in range(self.layout.num_columns):
                block.validity_bitmaps[column_id].clear(offset)
            block.allocation_bitmap.clear(offset)

    def rollback_delete(self, record: DeleteUndoRecord) -> None:
        """Undo an aborted delete: restore the allocation bit."""
        block = self._block(record.slot.block_id)
        with block.write_latch:
            block.allocation_bitmap.set(record.slot.offset)

    def _free_owned_entry(self, block: RawBlock, column_id: int, offset: int) -> None:
        entry = read_entry(block.varlen_entry_view(column_id, offset))
        if entry.owns_buffer:
            block.varlen_heaps[column_id].free(entry.pointer)

    # ------------------------------------------------------------------ #
    # statistics                                                          #
    # ------------------------------------------------------------------ #

    def live_tuple_count(self) -> int:
        """Physically allocated tuples across all blocks (no snapshots)."""
        return sum(b.allocation_bitmap.count_set() for b in self.blocks)

    def block_states(self) -> dict[BlockState, int]:
        """Histogram of block states, as reported in Figure 10b."""
        histogram = {state: 0 for state in BlockState}
        for block in self.blocks:
            histogram[block.state] += 1
        return histogram

    def _notify(
        self,
        txn: "TransactionContext",
        slot: TupleSlot,
        kind: str,
        new_values: dict | None,
        old_values: dict | None,
    ) -> None:
        for listener in self._write_listeners:
            listener(txn, slot, kind, new_values, old_values)

    def __repr__(self) -> str:
        return f"DataTable(name={self.name!r}, blocks={len(self.blocks)})"
