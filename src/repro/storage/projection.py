"""Projected rows: partial-tuple reads and writes.

The Data Table API materializes tuple versions *into* the transaction
(Section 3.1); a :class:`ProjectedRow` is that materialization buffer — a
subset of column values keyed by column id, convertible to and from Python
values.  Undo and redo records reuse the same shape for before/after images.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.errors import StorageError


class ProjectedRow:
    """A mutable mapping of column id → value for a subset of columns."""

    __slots__ = ("_values",)

    def __init__(self, values: Mapping[int, Any] | None = None) -> None:
        self._values: dict[int, Any] = dict(values or {})

    @property
    def column_ids(self) -> list[int]:
        """Column ids present, ascending."""
        return sorted(self._values)

    def get(self, column_id: int) -> Any:
        """Value of ``column_id`` (``None`` is a legal value: SQL NULL)."""
        try:
            return self._values[column_id]
        except KeyError:
            raise StorageError(f"column {column_id} not in projection") from None

    def set(self, column_id: int, value: Any) -> None:
        """Set the value for ``column_id``."""
        self._values[column_id] = value

    def __contains__(self, column_id: int) -> bool:
        return column_id in self._values

    def __len__(self) -> int:
        return len(self._values)

    def items(self) -> Iterator[tuple[int, Any]]:
        """(column id, value) pairs in ascending column order."""
        return iter(sorted(self._values.items()))

    def apply_onto(self, other: "ProjectedRow") -> None:
        """Overwrite ``other``'s values with this row's, where present.

        This is how a before-image delta record is applied onto a copied
        tuple during version-chain traversal.
        """
        for column_id, value in self._values.items():
            if column_id in other._values:
                other._values[column_id] = value

    def copy(self) -> "ProjectedRow":
        """Shallow copy."""
        return ProjectedRow(self._values)

    def to_dict(self) -> dict[int, Any]:
        """Plain dict copy of the projection."""
        return dict(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProjectedRow):
            return NotImplemented
        return self._values == other._values

    def __repr__(self) -> str:
        return f"ProjectedRow({self._values})"
