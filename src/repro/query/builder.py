"""A small fluent query API over the vectorized scan layer.

The adoption-friendly face of in-engine analytics::

    from repro.query import Query

    total = (
        Query(db, "sales")
        .where("region", "==", 3)
        .where("amount", ">", 100.0)
        .sum("amount")
    )
    by_region = Query(db, "sales").group_by("region").sum("amount")

Predicates on numeric columns automatically feed the zone-map pruner, so
range-selective queries skip frozen blocks without reading them.
"""

from __future__ import annotations

import operator
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import StorageError
from repro.query.ops import AggregateResult, filter_mask
from repro.query.scan import ColumnBatch, TableScanner

if TYPE_CHECKING:
    from repro.db import Database

_OPS = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Query:
    """An immutable-ish builder; terminal methods execute the scan."""

    def __init__(self, db: "Database", table_name: str) -> None:
        self._db = db
        self._info = db.catalog.get(table_name)
        self._filters: list[tuple[int, str, Any]] = []
        self._group_key: int | None = None

    # ------------------------------------------------------------------ #
    # building                                                            #
    # ------------------------------------------------------------------ #

    def where(self, column: str, op: str, value: Any) -> "Query":
        """Add a conjunctive predicate ``column <op> value``."""
        if op not in _OPS:
            raise StorageError(f"unsupported operator {op!r}; use one of {sorted(_OPS)}")
        self._filters.append((self._info.column_id(column), op, value))
        return self

    def where_between(self, column: str, low: Any, high: Any) -> "Query":
        """Inclusive range predicate (drives zone-map pruning)."""
        return self.where(column, ">=", low).where(column, "<=", high)

    def group_by(self, column: str) -> "Query":
        """Group terminal aggregates by ``column``."""
        self._group_key = self._info.column_id(column)
        return self

    # ------------------------------------------------------------------ #
    # execution                                                           #
    # ------------------------------------------------------------------ #

    def _range_filters(self) -> dict[int, tuple[float | None, float | None]]:
        bounds: dict[int, list[float | None]] = {}
        for column_id, op, value in self._filters:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            low, high = bounds.setdefault(column_id, [None, None])
            if op in (">", ">="):
                bounds[column_id][0] = value if low is None else max(low, value)
            elif op in ("<", "<="):
                bounds[column_id][1] = value if high is None else min(high, value)
            elif op == "==":
                bounds[column_id] = [value, value]
        return {c: (lo, hi) for c, (lo, hi) in bounds.items() if lo is not None or hi is not None}

    def _residual_filters(self) -> list[tuple[int, str, Any]]:
        """Predicates the scanner's selection vector does *not* fully
        absorb.  The pushed bounds are inclusive and NULL-excluding, so a
        ``>=``/``<=``/``==`` predicate implied by the final merged bounds
        needs no re-masking; strict (``>``/``<``), ``!=``, and non-numeric
        predicates are re-applied over the selected rows."""
        bounds = self._range_filters()
        residual: list[tuple[int, str, Any]] = []
        for column_id, op, value in self._filters:
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                low, high = bounds.get(column_id, (None, None))
                if op == ">=" and low is not None and low >= value:
                    continue
                if op == "<=" and high is not None and high <= value:
                    continue
                if op == "==" and low == value and high == value:
                    continue
            residual.append((column_id, op, value))
        return residual

    def _scanner(self, value_columns: list[int]) -> TableScanner:
        needed = sorted(
            set(value_columns)
            | {c for c, _, _ in self._filters}
            | ({self._group_key} if self._group_key is not None else set())
        )
        return TableScanner(
            self._db.txn_manager,
            self._info.table,
            column_ids=needed,
            range_filters=self._range_filters(),
            registry=getattr(self._db, "obs", None),
        )

    def _mask(self, batch: ColumnBatch) -> np.ndarray:
        """Rows passing every predicate: the scanner's selection vector
        (which already enforces the absorbed range bounds) AND the
        residual predicates re-masked here."""
        mask = batch.selection_mask()
        mask = np.ones(batch.num_rows, dtype=bool) if mask is None else mask
        for column_id, op, value in self._residual_filters():
            fn = _OPS[op]
            mask = mask & filter_mask(
                batch, column_id, lambda v, fn=fn, value=value: fn(v, value)
            )
        return mask

    def _iter_filtered(self, value_column: int):
        scanner = self._scanner([value_column])
        for batch in scanner.batches():
            mask = self._mask(batch)
            vector = batch.column(value_column)
            if isinstance(vector, np.ndarray):
                nulls = batch.null_masks.get(value_column)
                keep = mask if nulls is None else mask & ~nulls
                yield batch, mask, vector[keep]
            else:
                yield batch, mask, [v for v, keep in zip(vector, mask) if keep]

    def _aggregate(self, column: str) -> "AggregateResult | dict[Any, AggregateResult]":
        value_column = self._info.column_id(column)
        if self._group_key is None:
            result = AggregateResult()
            for _, _, values in self._iter_filtered(value_column):
                result.update(values)
            return result
        groups: dict[Any, AggregateResult] = {}
        for batch, mask, _ in self._iter_filtered(value_column):
            keys_list = batch.pylist(self._group_key)
            values_list = batch.pylist(value_column)
            for key, value, keep in zip(keys_list, values_list, mask):
                if keep and value is not None:
                    groups.setdefault(key, AggregateResult()).update([value])
        return groups

    # terminal methods -------------------------------------------------- #

    def explain(self) -> dict[str, Any]:
        """Execute the scan and report where the work went.

        Returns blocks scanned in place / materialized / zone-map pruned,
        rows examined, and rows matching the predicates — the numbers that
        show whether pruning and the frozen fast path are engaging.
        """
        scanner = self._scanner([])
        rows_examined = 0
        rows_matched = 0
        for batch in scanner.batches():
            rows_examined += batch.num_rows
            rows_matched += int(self._mask(batch).sum())
        return {
            "blocks_in_place": scanner.frozen_blocks_scanned,
            "blocks_materialized": scanner.hot_blocks_scanned,
            "blocks_pruned": scanner.blocks_pruned,
            "rows_examined": rows_examined,
            "rows_matched": rows_matched,
            "range_filters": self._range_filters(),
        }

    def count(self) -> "int | dict[Any, int]":
        """Number of rows matching the predicates."""
        if self._group_key is None:
            total = 0
            scanner = self._scanner([])
            for batch in scanner.batches():
                total += int(self._mask(batch).sum())
            return total
        key_name = self._info.table.layout.columns[self._group_key].name
        grouped = self.group_by(key_name)._aggregate(key_name)
        return {key: r.count for key, r in grouped.items()}

    def sum(self, column: str) -> "float | dict[Any, float]":
        """SUM(column), grouped if ``group_by`` was set."""
        result = self._aggregate(column)
        if isinstance(result, dict):
            return {key: r.total for key, r in result.items()}
        return result.total

    def avg(self, column: str) -> "float | None | dict[Any, float | None]":
        """AVG(column), grouped if ``group_by`` was set."""
        result = self._aggregate(column)
        if isinstance(result, dict):
            return {key: r.mean for key, r in result.items()}
        return result.mean

    def min(self, column: str):
        """MIN(column)."""
        result = self._aggregate(column)
        if isinstance(result, dict):
            return {key: r.minimum for key, r in result.items()}
        return result.minimum

    def max(self, column: str):
        """MAX(column)."""
        result = self._aggregate(column)
        if isinstance(result, dict):
            return {key: r.maximum for key, r in result.items()}
        return result.maximum

    def to_rows(self, limit: int | None = None) -> list[dict[str, Any]]:
        """Materialize matching rows as name-keyed dicts."""
        names = [c.name for c in self._info.table.layout.columns]
        all_columns = list(range(len(names)))
        scanner = TableScanner(
            self._db.txn_manager,
            self._info.table,
            column_ids=all_columns,
            range_filters=self._range_filters(),
            registry=getattr(self._db, "obs", None),
        )
        rows: list[dict[str, Any]] = []
        for batch in scanner.batches():
            mask = self._mask(batch)
            vectors = {c: batch.pylist(c) for c in all_columns}
            for i in range(batch.num_rows):
                if not mask[i]:
                    continue
                rows.append({names[c]: vectors[c][i] for c in all_columns})
                if limit is not None and len(rows) >= limit:
                    return rows
        return rows
