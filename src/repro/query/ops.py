"""Vectorized operators over column batches: filter, aggregate, group-by."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.errors import StorageError
from repro.query.scan import ColumnBatch, TableScanner

Predicate = Callable[[Any], Any]


@dataclass
class AggregateResult:
    """Running aggregate state, combinable across batches."""

    count: int = 0
    total: float = 0.0
    minimum: float | None = None
    maximum: float | None = None

    @property
    def mean(self) -> float | None:
        """Arithmetic mean, or ``None`` when no rows were seen."""
        return self.total / self.count if self.count else None

    def update(self, values: np.ndarray | list) -> None:
        """Fold a vector of non-null numeric values into the state."""
        if isinstance(values, np.ndarray):
            if not len(values):
                return
            self.count += len(values)
            self.total += float(values.sum())
            low, high = float(values.min()), float(values.max())
        else:
            clean = [v for v in values if v is not None]
            if not clean:
                return
            self.count += len(clean)
            self.total += float(sum(clean))
            low, high = float(min(clean)), float(max(clean))
        self.minimum = low if self.minimum is None else min(self.minimum, low)
        self.maximum = high if self.maximum is None else max(self.maximum, high)


def filter_mask(batch: ColumnBatch, column_id: int, predicate: Predicate) -> np.ndarray:
    """Boolean mask of rows where ``predicate(value)`` is true.

    For numpy-backed columns the predicate is applied vectorized (it
    receives the whole array and must return a boolean array); for list
    columns it is applied per value.
    """
    vector = batch.column(column_id)
    if isinstance(vector, np.ndarray):
        mask = predicate(vector)
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != vector.shape:
            raise StorageError("vectorized predicate must return one bool per row")
        return mask
    return np.array([v is not None and bool(predicate(v)) for v in vector], dtype=bool)


def _masked(vector, mask: np.ndarray):
    if isinstance(vector, np.ndarray):
        return vector[mask]
    return [v for v, keep in zip(vector, mask) if keep]


def aggregate(
    scanner: TableScanner,
    value_column: int,
    filter_column: int | None = None,
    predicate: Predicate | None = None,
) -> AggregateResult:
    """COUNT/SUM/MIN/MAX/AVG of one column, optionally filtered."""
    result = AggregateResult()
    for batch in scanner.batches():
        vector = batch.column(value_column)
        if filter_column is not None and predicate is not None:
            mask = filter_mask(batch, filter_column, predicate)
            vector = _masked(vector, mask)
        if isinstance(vector, np.ndarray):
            result.update(vector)
        else:
            result.update(vector)
    return result


def group_by_aggregate(
    scanner: TableScanner,
    key_column: int,
    value_column: int,
) -> dict[Any, AggregateResult]:
    """Per-key aggregates of ``value_column`` grouped by ``key_column``."""
    groups: dict[Any, AggregateResult] = {}
    for batch in scanner.batches():
        keys = batch.column(key_column)
        values = batch.column(value_column)
        if isinstance(keys, np.ndarray) and isinstance(values, np.ndarray):
            order = np.argsort(keys, kind="stable")
            sorted_keys = keys[order]
            sorted_values = values[order]
            boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
            starts = np.concatenate(([0], boundaries))
            ends = np.concatenate((boundaries, [len(sorted_keys)]))
            for start, end in zip(starts, ends):
                key = sorted_keys[start].item()
                groups.setdefault(key, AggregateResult()).update(
                    sorted_values[start:end]
                )
        else:
            keys_list = keys.tolist() if isinstance(keys, np.ndarray) else keys
            values_list = (
                values.tolist() if isinstance(values, np.ndarray) else values
            )
            per_key: dict[Any, list] = {}
            for key, value in zip(keys_list, values_list):
                if value is not None:
                    per_key.setdefault(key, []).append(value)
            for key, vals in per_key.items():
                groups.setdefault(key, AggregateResult()).update(vals)
    return groups
