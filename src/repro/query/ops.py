"""Vectorized operators over column batches: filter, aggregate, group-by.

Operators consume the scanner's pushed-down selection vectors: a batch
arrives with ``batch.selection`` already restricted to the rows inside the
scan's inclusive range bounds, so only *residual* predicates need a mask
here.  NULL handling is explicit — :func:`filter_masks` returns the
predicate mask and the NULL mask side by side, because "predicate false"
and "value unknown" are different answers (COUNT(*) filters and NULL-aware
predicates must distinguish them)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.errors import StorageError
from repro.query.scan import ColumnBatch, TableScanner

Predicate = Callable[[Any], Any]


@dataclass
class AggregateResult:
    """Running aggregate state, combinable across batches."""

    count: int = 0
    total: float = 0.0
    minimum: float | None = None
    maximum: float | None = None

    @property
    def mean(self) -> float | None:
        """Arithmetic mean, or ``None`` when no rows were seen."""
        return self.total / self.count if self.count else None

    def update(self, values: np.ndarray | list) -> None:
        """Fold a vector of non-null numeric values into the state."""
        if isinstance(values, np.ndarray):
            if not len(values):
                return
            self.count += len(values)
            self.total += float(values.sum())
            low, high = float(values.min()), float(values.max())
        else:
            clean = [v for v in values if v is not None]
            if not clean:
                return
            self.count += len(clean)
            self.total += float(sum(clean))
            low, high = float(min(clean)), float(max(clean))
        self.minimum = low if self.minimum is None else min(self.minimum, low)
        self.maximum = high if self.maximum is None else max(self.maximum, high)


def filter_masks(
    batch: ColumnBatch, column_id: int, predicate: Predicate
) -> tuple[np.ndarray, np.ndarray]:
    """``(mask, nulls)`` over all rows of the batch.

    ``mask[i]`` is true where row ``i`` is non-NULL *and* satisfies the
    predicate; ``nulls[i]`` is true where the value is NULL (and the
    predicate was never consulted).  For numpy-backed columns the
    predicate is applied vectorized (it receives the whole array and must
    return a boolean array); for list-like columns it is applied per
    value.
    """
    vector = batch.column(column_id)
    if isinstance(vector, np.ndarray):
        nulls = batch.null_masks.get(column_id)
        mask = np.asarray(predicate(vector), dtype=bool)
        if mask.shape != vector.shape:
            raise StorageError("vectorized predicate must return one bool per row")
        if nulls is None:
            return mask, np.zeros(len(vector), dtype=bool)
        return mask & ~nulls, nulls
    n = len(vector)
    nulls = np.fromiter((v is None for v in vector), dtype=bool, count=n)
    mask = np.fromiter(
        (v is not None and bool(predicate(v)) for v in vector), dtype=bool, count=n
    )
    return mask, nulls


def filter_mask(batch: ColumnBatch, column_id: int, predicate: Predicate) -> np.ndarray:
    """Boolean mask of rows where ``predicate(value)`` is true.

    NULL rows come back false — use :func:`filter_masks` when the caller
    must tell NULL apart from a failed predicate.
    """
    return filter_masks(batch, column_id, predicate)[0]


def _combine_keep(batch: ColumnBatch, mask: np.ndarray | None) -> np.ndarray | None:
    """Fold the batch's selection into an (optional) predicate mask."""
    selection = batch.selection_mask()
    if mask is None:
        return selection
    if selection is None:
        return mask
    return mask & selection


def _non_null_values(batch: ColumnBatch, column_id: int, keep: np.ndarray | None):
    """Values of ``column_id`` under ``keep`` (all rows when ``None``),
    with NULLs dropped; numpy arrays stay numpy."""
    vector = batch.column(column_id)
    if isinstance(vector, np.ndarray):
        nulls = batch.null_masks.get(column_id)
        if keep is None and nulls is None:
            return vector
        valid = ~nulls if nulls is not None else np.ones(len(vector), dtype=bool)
        if keep is not None:
            valid &= keep
        return vector[valid]
    if keep is None:
        return [v for v in vector if v is not None]
    return [v for v, k in zip(vector, keep) if k and v is not None]


def aggregate(
    scanner: TableScanner,
    value_column: int,
    filter_column: int | None = None,
    predicate: Predicate | None = None,
) -> AggregateResult:
    """COUNT/SUM/MIN/MAX/AVG of one column, optionally filtered.

    The scanner's selection vector is applied first; ``predicate`` (if
    any) masks the remaining rows."""
    result = AggregateResult()
    for batch in scanner.batches():
        if filter_column is not None and predicate is not None:
            keep = _combine_keep(batch, filter_mask(batch, filter_column, predicate))
        else:
            keep = _combine_keep(batch, None)
        result.update(_non_null_values(batch, value_column, keep))
    return result


def group_by_aggregate(
    scanner: TableScanner,
    key_column: int,
    value_column: int,
) -> dict[Any, AggregateResult]:
    """Per-key aggregates of ``value_column`` grouped by ``key_column``."""
    groups: dict[Any, AggregateResult] = {}
    for batch in scanner.batches():
        keys = batch.column(key_column)
        values = batch.column(value_column)
        keep = _combine_keep(batch, None)
        if (
            isinstance(keys, np.ndarray)
            and isinstance(values, np.ndarray)
            and key_column not in batch.null_masks
        ):
            value_nulls = batch.null_masks.get(value_column)
            valid = keep if keep is not None else None
            if value_nulls is not None:
                valid = ~value_nulls if valid is None else valid & ~value_nulls
            if valid is not None:
                keys = keys[valid]
                values = values[valid]
            order = np.argsort(keys, kind="stable")
            sorted_keys = keys[order]
            sorted_values = values[order]
            boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
            starts = np.concatenate(([0], boundaries))
            ends = np.concatenate((boundaries, [len(sorted_keys)]))
            for start, end in zip(starts, ends):
                if start == end:
                    continue
                key = sorted_keys[start].item()
                groups.setdefault(key, AggregateResult()).update(
                    sorted_values[start:end]
                )
        else:
            keys_list = batch.pylist(key_column)
            values_list = batch.pylist(value_column)
            per_key: dict[Any, list] = {}
            for i, (key, value) in enumerate(zip(keys_list, values_list)):
                if value is None:
                    continue
                if keep is not None and not keep[i]:
                    continue
                per_key.setdefault(key, []).append(value)
            for key, vals in per_key.items():
                groups.setdefault(key, AggregateResult()).update(vals)
    return groups
