"""Hybrid table scans: in-place over frozen blocks, MVCC over hot ones.

A :class:`TableScanner` yields :class:`ColumnBatch` objects — per-block
column vectors.  For FROZEN blocks the fixed-width vectors are zero-copy
numpy views of the block buffer and varlen columns are lazy
:class:`ArrowColumnView` facades over the gathered Arrow arrays; for hot
blocks the scanner materializes a transactional snapshot *block at a
time*: one write-latch acquisition bulk-copies the requested fixed-width
columns (plus validity/allocation bitmaps) and snapshots the version
pointers, then version chains are walked only for the (typically few)
slots that have one, overlaying before-images into the copied arrays.
This turns the O(rows) latched per-tuple loop into O(chained-slots)
patching over numpy bulk operations — the "elide version checking for
cold blocks" fast path of Sections 3.1/4.1, extended so even hot blocks
pay the MVCC tax only on their churned fraction.

Range predicates pushed into the scanner become **selection vectors**:
per-batch numpy index arrays of the rows that satisfy every inclusive
bound (NULLs excluded).  Operators downstream start from the selection
instead of re-masking the absorbed predicates.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

import numpy as np

from repro.arrowfmt.array import VarBinaryArray
from repro.arrowfmt.buffer import Bitmap, Buffer
from repro.arrowfmt.datatypes import VarBinaryType
from repro.errors import StorageError
from repro.obs import trace
from repro.obs.slo import stamp_phase
from repro.storage.tuple_slot import TupleSlot
from repro.storage.varlen import read_value
from repro.transform.arrow_view import block_to_record_batch

if TYPE_CHECKING:
    from repro.storage.data_table import DataTable
    from repro.txn.context import TransactionContext
    from repro.txn.manager import TransactionManager

#: Histogram buckets for per-batch selectivity (selected / physical rows).
SELECTIVITY_BUCKETS: tuple[float, ...] = (
    0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0,
)


def pruned_by_zone_map(zone_maps, range_filters) -> bool:
    """Whether a block provably holds no row inside the bounds.

    Works over frozen zone maps (exact over live values at gather time) and
    hot zone maps (widen-only supersets of every value any snapshot could
    see) alike; an absent entry never prunes.  Shared by the in-process
    scanner and the worker processes (:mod:`repro.parallel.worker`) so both
    paths prune identically.
    """
    for column_id, (low, high) in range_filters.items():
        zone = zone_maps.get(column_id)
        if zone is None:
            continue
        zone_min, zone_max = zone[0], zone[1]
        if low is not None and zone_max < low:
            return True
        if high is not None and zone_min > high:
            return True
    return False


def compute_selection(
    columns: dict[int, Any],
    null_masks: dict[int, np.ndarray],
    range_filters: dict[int, tuple[float | None, float | None]],
    num_rows: int,
) -> np.ndarray:
    """Selection vector of the rows passing every inclusive range bound.

    A row is selected iff every filtered column is non-NULL and within
    ``[low, high]``; filter columns absent from ``columns`` are skipped
    (the caller must re-apply their predicate).  This is the single
    implementation behind both the serial scanner and the parallel
    workers, so selections cannot drift between the two paths.
    """
    mask = np.ones(num_rows, dtype=bool)
    for column_id, (low, high) in range_filters.items():
        vector = columns.get(column_id)
        if vector is None:
            continue
        if isinstance(vector, np.ndarray):
            if low is not None:
                mask &= vector >= low
            if high is not None:
                mask &= vector <= high
            nulls = null_masks.get(column_id)
            if nulls is not None:
                mask &= ~nulls
        else:
            mask &= np.fromiter(
                (
                    v is not None
                    and (low is None or v >= low)
                    and (high is None or v <= high)
                    for v in vector
                ),
                dtype=bool,
                count=num_rows,
            )
    return np.flatnonzero(mask)


class ArrowColumnView(Sequence):
    """A lazy list facade over an Arrow array (frozen varlen columns).

    Point lookups go straight to the array (no full decode); the first
    full iteration materializes ``to_pylist()`` once and caches it, so
    legacy callers that expected Python lists keep working while callers
    that never touch the column pay nothing.
    """

    __slots__ = ("array", "_values")

    def __init__(self, array: Any) -> None:
        self.array = array
        self._values: list | None = None

    def _materialize(self) -> list:
        if self._values is None:
            self._values = self.array.to_pylist()
        return self._values

    def __len__(self) -> int:
        return self.array.length

    def __getitem__(self, i):
        if isinstance(i, slice):
            return self._materialize()[i]
        if self._values is not None:
            return self._values[i]
        return self.array[i]

    def __iter__(self) -> Iterator:
        return iter(self._materialize())

    def to_pylist(self) -> list:
        """Materialized copy as a plain Python list."""
        return list(self._materialize())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ArrowColumnView):
            return self._materialize() == other._materialize()
        if isinstance(other, list):
            return self._materialize() == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"ArrowColumnView(length={len(self)}, materialized={self._values is not None})"


@dataclass
class ColumnBatch:
    """One block's worth of column vectors.

    Fixed-width columns are numpy arrays (zero-copy for frozen blocks,
    latched bulk copies for hot ones); varlen columns are
    :class:`ArrowColumnView` sequences (frozen) or Python lists (hot).
    ``null_masks[column_id]`` is a boolean array marking NULL rows of a
    fixed-width column — the key is absent when the column has no NULLs,
    so ``null_masks.get(cid)`` doubles as a has-nulls test.  ``selection``
    is the scanner's pushed-down selection vector: indices of the rows
    satisfying every inclusive range filter, or ``None`` when no filters
    were pushed (all rows selected).
    """

    columns: dict[int, Any]
    num_rows: int
    from_frozen: bool
    selection: np.ndarray | None = None
    null_masks: dict[int, np.ndarray] = field(default_factory=dict)

    def column(self, column_id: int) -> Any:
        """The full (unselected) vector for ``column_id``."""
        try:
            return self.columns[column_id]
        except KeyError:
            raise StorageError(f"column {column_id} not in this scan") from None

    def null_mask(self, column_id: int) -> np.ndarray | None:
        """Boolean NULL mask for a fixed-width column, or ``None``."""
        return self.null_masks.get(column_id)

    @property
    def selected_count(self) -> int:
        """Rows passing the pushed-down range filters."""
        return self.num_rows if self.selection is None else len(self.selection)

    def selection_mask(self) -> np.ndarray | None:
        """The selection as a boolean row mask (``None`` = all rows)."""
        if self.selection is None:
            return None
        mask = np.zeros(self.num_rows, dtype=bool)
        mask[self.selection] = True
        return mask

    def gather(self, column_id: int) -> Any:
        """The vector for ``column_id`` reduced to the selection."""
        vector = self.column(column_id)
        if self.selection is None:
            return vector
        if isinstance(vector, np.ndarray):
            return vector[self.selection]
        return [vector[i] for i in self.selection]

    def pylist(self, column_id: int) -> list:
        """The full vector as a Python list with ``None`` for NULLs."""
        vector = self.column(column_id)
        if isinstance(vector, np.ndarray):
            values = vector.tolist()
            nulls = self.null_masks.get(column_id)
            if nulls is not None:
                values = [None if null else v for v, null in zip(values, nulls)]
            return values
        return list(vector)


class TableScanner:
    """Streams a table as column batches, fast-pathing frozen blocks."""

    def __init__(
        self,
        txn_manager: "TransactionManager",
        table: "DataTable",
        column_ids: list[int] | None = None,
        range_filters: dict[int, tuple[float | None, float | None]] | None = None,
        registry=None,
        txn: "TransactionContext | None" = None,
        vectorized: bool = True,
        pool=None,
    ) -> None:
        """``range_filters`` maps column id → (low, high) inclusive bounds
        (either side ``None`` for open).  Blocks whose zone maps prove the
        range empty are skipped without being read — frozen blocks through
        the gather-time maps, hot blocks through the incrementally widened
        write-side maps — and surviving batches carry a selection vector of
        the rows inside the bounds.  Strict (``>``/``<``) predicates must
        still be applied by the caller; the pushed bounds are inclusive.

        ``txn`` pins the scan to a caller-owned snapshot (the scanner will
        not commit it); when omitted, one transaction spans the *whole*
        scan, so every hot block is read under the same snapshot.

        ``vectorized=False`` selects the row-at-a-time reference path (one
        ``DataTable.select`` per slot) — kept as the correctness oracle and
        the ablation baseline.

        ``pool`` (a :class:`repro.parallel.WorkerPool`, e.g.
        ``db.parallel_pool``) fans frozen-block fragments out to worker
        processes over shared memory; hot blocks are always materialized
        in-process under the scan's snapshot, and any fragment the pool
        cannot complete is redone in-process, so results are identical to
        the serial path.

        Pass a :class:`~repro.obs.registry.MetricRegistry` (e.g. ``db.obs``)
        to publish ``query.*`` scan counters."""
        self.txn_manager = txn_manager
        self.table = table
        self.pool = pool
        self.column_ids = (
            column_ids
            if column_ids is not None
            else list(range(table.layout.num_columns))
        )
        self.range_filters = dict(range_filters or {})
        self.txn = txn
        self.vectorized = vectorized
        self.frozen_blocks_scanned = 0
        self.hot_blocks_scanned = 0
        self.blocks_pruned = 0
        self.rows_patched = 0
        if registry is not None:
            self._m_pruned = registry.counter(
                "query.blocks_pruned_total", "blocks skipped via zone maps"
            )
            self._m_frozen = registry.counter(
                "query.frozen_blocks_scanned_total", "blocks scanned in place"
            )
            self._m_hot = registry.counter(
                "query.hot_blocks_scanned_total", "blocks scanned through MVCC"
            )
            self._m_patched = registry.counter(
                "query.rows_patched_total",
                "hot-scan slots overlaid with version-chain before-images",
            )
            self._m_selectivity = registry.histogram(
                "query.selection_selectivity",
                "fraction of batch rows passing pushed-down range filters",
                buckets=SELECTIVITY_BUCKETS,
            )
        else:
            self._m_pruned = self._m_frozen = self._m_hot = None
            self._m_patched = self._m_selectivity = None

    def batches(self) -> Iterator[ColumnBatch]:
        """Yield one batch per block that has any visible rows.

        The whole iteration runs under a single transactional snapshot
        (the caller's ``txn`` if one was supplied), so a multi-block scan
        is consistent: hot blocks materialized early and late see the same
        committed state.
        """
        txn = self.txn
        owns_txn = txn is None
        if owns_txn:
            txn = self.txn_manager.begin()
        try:
            # One root span per scan: fragment dispatch captures this
            # span's trace context, so worker-process spans join the same
            # causal tree (and a caller's enclosing span adopts the scan).
            with trace.span("query.scan", parallel=self.pool is not None):
                if self.pool is not None:
                    yield from self._batches_parallel(txn)
                else:
                    yield from self._batches_serial(txn)
        finally:
            if owns_txn:
                self.txn_manager.commit(txn)

    def _batches_serial(self, txn: "TransactionContext") -> Iterator[ColumnBatch]:
        for block in list(self.table.blocks):
            if block.begin_frozen_read():
                try:
                    if self._pruned_by_zone_map(block.zone_maps):
                        self._count_pruned()
                        continue
                    with trace.span("query.scan.frozen"):
                        batch = self._frozen_batch(block)
                finally:
                    block.end_frozen_read()
                self.frozen_blocks_scanned += 1
                if self._m_frozen is not None:
                    self._m_frozen.inc()
            else:
                if self._pruned_by_zone_map(block.hot_zone_maps):
                    self._count_pruned()
                    continue
                with trace.span("query.scan.hot"):
                    if self.vectorized:
                        batch = self._hot_batch(block, txn)
                    else:
                        batch = self._hot_batch_rowwise(block, txn)
                self.hot_blocks_scanned += 1
                if self._m_hot is not None:
                    self._m_hot.inc()
            self._apply_selection(batch)
            if batch.num_rows:
                yield batch

    # ------------------------------------------------------------------ #
    # parallel path: frozen fragments out to the worker pool              #
    # ------------------------------------------------------------------ #

    def _batches_parallel(self, txn: "TransactionContext") -> Iterator[ColumnBatch]:
        """Fan frozen blocks out to workers; keep hot/MVCC work here.

        Snapshot correctness: visibility of frozen data is decided *in
        this process* by pinning blocks whose shared-memory descriptor
        matches the current freeze (the pin blocks reheating, so the slot
        payload cannot go stale while a worker reads it).  Workers never
        see transactions or version chains.  Any fragment the pool fails
        to complete is recomputed in-process under the still-held pins, so
        a worker crash degrades throughput, not results.
        """
        from repro.parallel.placement import descriptor_if_valid

        blocks = list(self.table.blocks)
        #: per block: ("worker", descriptor) with the pin HELD, or
        #: ("frozen", None) pinned without a descriptor, or ("hot", None).
        plan: list[tuple[str, Any]] = []
        pinned: list[Any] = []
        try:
            for block in blocks:
                if block.begin_frozen_read():
                    pinned.append(block)
                    descriptor = descriptor_if_valid(block)
                    if descriptor is not None:
                        plan.append(("worker", descriptor))
                    else:
                        plan.append(("frozen", None))
                else:
                    plan.append(("hot", None))

            jobs = [
                (i, descriptor)
                for i, (kind, descriptor) in enumerate(plan)
                if kind == "worker"
            ]
            results: dict[int, Any] = {}
            if jobs:
                fragments = self._partition(jobs)
                payloads = [
                    ([d for _, d in fragment], self.column_ids, self.range_filters)
                    for fragment in fragments
                ]
                # Time spent waiting on worker processes is its own phase
                # on the surrounding request's critical path.
                with stamp_phase("worker.fragment"), trace.span(
                    "query.scan.parallel_dispatch"
                ):
                    answers = self.pool.run_fragments("scan", payloads)
                for fragment, answer in zip(fragments, answers):
                    if answer is None:
                        continue  # pool fallback: recompute below
                    for (block_index, _), result in zip(fragment, answer):
                        results[block_index] = result

            for block_index, (kind, descriptor) in enumerate(plan):
                block = blocks[block_index]
                if kind == "hot":
                    if self._pruned_by_zone_map(block.hot_zone_maps):
                        self._count_pruned()
                        continue
                    with trace.span("query.scan.hot"):
                        if self.vectorized:
                            batch = self._hot_batch(block, txn)
                        else:
                            batch = self._hot_batch_rowwise(block, txn)
                    self.hot_blocks_scanned += 1
                    if self._m_hot is not None:
                        self._m_hot.inc()
                    self._apply_selection(batch)
                    if batch.num_rows:
                        yield batch
                    continue
                result = results.get(block_index)
                if result is not None:
                    if result["pruned"]:
                        self._count_pruned()
                        continue
                    batch = self._batch_from_result(result)
                else:
                    # In-process fallback (no descriptor, or the pool did
                    # not complete this fragment); the pin is still held,
                    # so the block is safely readable in place.
                    if self._pruned_by_zone_map(block.zone_maps):
                        self._count_pruned()
                        continue
                    with trace.span("query.scan.frozen"):
                        batch = self._frozen_batch(block)
                    self._apply_selection(batch)
                self.frozen_blocks_scanned += 1
                if self._m_frozen is not None:
                    self._m_frozen.inc()
                if batch.num_rows:
                    yield batch
        finally:
            for block in pinned:
                block.end_frozen_read()

    def _partition(self, jobs: list) -> list[list]:
        """Contiguous block-range fragments, ~2 per worker for balance."""
        target = max(1, 2 * getattr(self.pool, "num_workers", 1))
        size = max(1, -(-len(jobs) // target))
        return [jobs[i : i + size] for i in range(0, len(jobs), size)]

    def _batch_from_result(self, result: dict) -> ColumnBatch:
        """Rebuild a ColumnBatch from a worker's scan result — the same
        shapes ``_frozen_batch`` produces (ndarrays for fixed columns,
        :class:`ArrowColumnView` facades for varlen ones)."""
        n = result["num_rows"]
        columns: dict[int, Any] = dict(result["fixed"])
        for column_id, (offsets, values, valid) in result["varlen"].items():
            spec = self.table.layout.columns[column_id]
            validity = Bitmap.from_numpy(valid) if valid is not None else None
            array = VarBinaryArray(
                spec.dtype,  # type: ignore[arg-type]
                n,
                Buffer.from_numpy(offsets),
                Buffer.from_numpy(values),
                validity,
            )
            columns[column_id] = ArrowColumnView(array)
        selection = result["selection"]
        if selection is not None and self._m_selectivity is not None and n:
            self._m_selectivity.observe(len(selection) / n)
        return ColumnBatch(
            columns,
            n,
            from_frozen=True,
            selection=selection,
            null_masks=dict(result["null_masks"]),
        )

    def _count_pruned(self) -> None:
        self.blocks_pruned += 1
        if self._m_pruned is not None:
            self._m_pruned.inc()

    def _pruned_by_zone_map(self, zone_maps) -> bool:
        return pruned_by_zone_map(zone_maps, self.range_filters)

    # ------------------------------------------------------------------ #
    # selection vectors                                                   #
    # ------------------------------------------------------------------ #

    def _apply_selection(self, batch: ColumnBatch) -> None:
        """Compute the batch's selection vector from the range filters.

        The selection is *exact* for the inclusive bounds: a row is
        selected iff every filtered column is non-NULL and within
        ``[low, high]``.  Filter columns absent from the scan's projection
        are skipped (conservative: their predicate must be re-applied by
        the caller)."""
        if not self.range_filters or not batch.num_rows:
            return
        with trace.span("query.scan.selection"):
            batch.selection = compute_selection(
                batch.columns, batch.null_masks, self.range_filters, batch.num_rows
            )
        if self._m_selectivity is not None:
            self._m_selectivity.observe(len(batch.selection) / batch.num_rows)

    # ------------------------------------------------------------------ #
    # frozen fast path                                                    #
    # ------------------------------------------------------------------ #

    def _frozen_batch(self, block) -> ColumnBatch:
        record_batch = block_to_record_batch(block)
        columns: dict[int, Any] = {}
        null_masks: dict[int, np.ndarray] = {}
        n = record_batch.num_rows
        for column_id in self.column_ids:
            spec = self.table.layout.columns[column_id]
            array = record_batch.columns[column_id]
            if not spec.is_varlen:
                columns[column_id] = array.to_numpy()
                if array.null_count:
                    null_masks[column_id] = ~array.validity.to_numpy()[:n]
            else:
                # No to_pylist round trip: the Arrow array aliases the
                # gathered buffers; decoding happens only if somebody asks.
                columns[column_id] = ArrowColumnView(array)
        return ColumnBatch(columns, n, from_frozen=True, null_masks=null_masks)

    # ------------------------------------------------------------------ #
    # hot path: block-at-a-time MVCC                                      #
    # ------------------------------------------------------------------ #

    def _hot_batch(self, block, txn: "TransactionContext") -> ColumnBatch:
        """Materialize the snapshot of a hot block under one latch.

        Phase 1 (latched): bulk-copy the requested fixed-width column
        regions and bitmaps as numpy arrays, decode varlen candidates, and
        snapshot the version-pointer array.  Phase 2 (unlatched): walk the
        version chains of the few slots that have one, overlaying
        before-images into the copies — exactly the newest-to-oldest
        traversal ``DataTable.select`` performs, amortized over the block.
        """
        layout = self.table.layout
        fixed_ids = [c for c in self.column_ids if not layout.columns[c].is_varlen]
        varlen_ids = [c for c in self.column_ids if layout.columns[c].is_varlen]
        with trace.span("query.scan.hot_copy"):
            with block.write_latch:
                n = block.insert_head
                present = block.allocation_bitmap.to_numpy()[:n]
                ptrs = block.version_ptrs[:n]
                fixed: dict[int, np.ndarray] = {}
                nulls: dict[int, np.ndarray] = {}
                for column_id in fixed_ids:
                    fixed[column_id] = block.column_view(column_id)[:n].copy()
                    nulls[column_id] = ~block.validity_bitmaps[column_id].to_numpy()[:n]
                varlen: dict[int, list] = {
                    column_id: self._decode_varlen_column(
                        block, column_id, n, present, ptrs
                    )
                    for column_id in varlen_ids
                }
        patched = 0
        with trace.span("query.scan.hot_patch"):
            for offset, head in enumerate(ptrs):
                if head is None:
                    continue
                patched += 1
                alive = bool(present[offset])
                record = head
                while record is not None and not record.is_visible_to(txn):
                    alive = record.undo_presence(alive)
                    before = getattr(record, "before", None)
                    if before is not None:
                        for column_id, value in before.items():
                            if column_id in fixed:
                                if value is None:
                                    nulls[column_id][offset] = True
                                else:
                                    nulls[column_id][offset] = False
                                    fixed[column_id][offset] = value
                            elif column_id in varlen:
                                varlen[column_id][offset] = value
                    record = record.next
                present[offset] = alive
        self.rows_patched += patched
        if self._m_patched is not None and patched:
            self._m_patched.inc(patched)
        live = np.flatnonzero(present)
        columns: dict[int, Any] = {}
        null_masks: dict[int, np.ndarray] = {}
        for column_id in fixed_ids:
            columns[column_id] = fixed[column_id][live]
            live_nulls = nulls[column_id][live]
            if live_nulls.any():
                null_masks[column_id] = live_nulls
        for column_id in varlen_ids:
            values = varlen[column_id]
            columns[column_id] = [values[i] for i in live]
        return ColumnBatch(columns, len(live), from_frozen=False, null_masks=null_masks)

    def _decode_varlen_column(
        self, block, column_id: int, n: int, present: np.ndarray, ptrs: list
    ) -> list:
        """Decode the in-place varlen values of every candidate slot.

        Runs under the block latch (heap frees race with unlatched reads);
        only slots that are allocated or version-chained are decoded, so
        never-used and recycled gaps cost nothing."""
        spec = self.table.layout.columns[column_id]
        heap = block.varlen_heaps[column_id]
        gathered = block.gathered.get(column_id)
        gathered_values = gathered[1] if gathered is not None else None
        valid = block.validity_bitmaps[column_id].to_numpy()[:n]
        decode = isinstance(spec.dtype, VarBinaryType) and spec.dtype.is_utf8
        values: list = [None] * n
        for offset in range(n):
            if not valid[offset]:
                continue
            if not present[offset] and ptrs[offset] is None:
                continue
            raw = read_value(
                block.varlen_entry_view(column_id, offset), heap, gathered_values
            )
            values[offset] = raw.decode("utf-8") if decode else raw
        return values

    def _hot_batch_rowwise(self, block, txn: "TransactionContext") -> ColumnBatch:
        """Row-at-a-time reference path: one ``select`` per candidate slot.

        This is the pre-vectorization implementation, kept as the oracle
        the equivalence tests compare against and as the baseline of
        ``bench_ablation_scan_vectorized.py``.  It produces batches in the
        same shape as :meth:`_hot_batch` (numpy + null masks)."""
        layout = self.table.layout
        rows: list[dict[int, Any]] = []
        for offset in range(block.insert_head):
            slot = TupleSlot(block.block_id, offset)
            if (
                not block.allocation_bitmap.get(offset)
                and block.version_ptrs[offset] is None
            ):
                continue
            row = self.table.select(txn, slot, self.column_ids)
            if row is not None:
                rows.append(row.to_dict())
        columns: dict[int, Any] = {}
        null_masks: dict[int, np.ndarray] = {}
        for column_id in self.column_ids:
            spec = layout.columns[column_id]
            values = [r[column_id] for r in rows]
            if spec.is_varlen:
                columns[column_id] = values
                continue
            dtype = spec.dtype.numpy_dtype
            mask = np.fromiter(
                (v is None for v in values), dtype=bool, count=len(values)
            )
            filler = np.zeros(1, dtype=dtype)[0]
            columns[column_id] = np.array(
                [filler if v is None else v for v in values], dtype=dtype
            )
            if mask.any():
                null_masks[column_id] = mask
        return ColumnBatch(columns, len(rows), from_frozen=False, null_masks=null_masks)
