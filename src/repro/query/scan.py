"""Hybrid table scans: in-place over frozen blocks, MVCC over hot ones.

A :class:`TableScanner` yields :class:`ColumnBatch` objects — per-block
column vectors.  For FROZEN blocks the fixed-width vectors are zero-copy
numpy views of the block buffer and varlen columns come from the gathered
Arrow buffers; for hot blocks the scanner materializes a transactional
snapshot.  This is the "elide version checking for cold blocks" fast path
of Sections 3.1/4.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

import numpy as np

from repro.arrowfmt.datatypes import FixedWidthType
from repro.errors import StorageError
from repro.storage.tuple_slot import TupleSlot
from repro.transform.arrow_view import block_to_record_batch

if TYPE_CHECKING:
    from repro.storage.data_table import DataTable
    from repro.txn.manager import TransactionManager


@dataclass
class ColumnBatch:
    """One block's worth of column vectors.

    Fixed-width columns are numpy arrays (zero-copy for frozen blocks);
    varlen columns are Python lists of str/bytes/None.
    """

    columns: dict[int, Any]
    num_rows: int
    from_frozen: bool

    def column(self, column_id: int) -> Any:
        """The vector for ``column_id``."""
        try:
            return self.columns[column_id]
        except KeyError:
            raise StorageError(f"column {column_id} not in this scan") from None


class TableScanner:
    """Streams a table as column batches, fast-pathing frozen blocks."""

    def __init__(
        self,
        txn_manager: "TransactionManager",
        table: "DataTable",
        column_ids: list[int] | None = None,
        range_filters: dict[int, tuple[float | None, float | None]] | None = None,
        registry=None,
    ) -> None:
        """``range_filters`` maps column id → (low, high) bounds (either
        side ``None`` for open).  Frozen blocks whose zone maps prove the
        range empty are skipped without being read; the caller still has to
        apply the predicate row-wise (zone maps only prune, never filter).
        Pass a :class:`~repro.obs.registry.MetricRegistry` (e.g. ``db.obs``)
        to publish ``query.*`` scan counters."""
        self.txn_manager = txn_manager
        self.table = table
        self.column_ids = (
            column_ids
            if column_ids is not None
            else list(range(table.layout.num_columns))
        )
        self.range_filters = dict(range_filters or {})
        self.frozen_blocks_scanned = 0
        self.hot_blocks_scanned = 0
        self.blocks_pruned = 0
        if registry is not None:
            self._m_pruned = registry.counter(
                "query.blocks_pruned_total", "frozen blocks skipped via zone maps"
            )
            self._m_frozen = registry.counter(
                "query.frozen_blocks_scanned_total", "blocks scanned in place"
            )
            self._m_hot = registry.counter(
                "query.hot_blocks_scanned_total", "blocks scanned through MVCC"
            )
        else:
            self._m_pruned = self._m_frozen = self._m_hot = None

    def batches(self) -> Iterator[ColumnBatch]:
        """Yield one batch per block that has any visible rows."""
        for block in list(self.table.blocks):
            if block.begin_frozen_read():
                try:
                    if self._pruned_by_zone_map(block):
                        self.blocks_pruned += 1
                        if self._m_pruned is not None:
                            self._m_pruned.inc()
                        continue
                    batch = self._frozen_batch(block)
                finally:
                    block.end_frozen_read()
                self.frozen_blocks_scanned += 1
                if self._m_frozen is not None:
                    self._m_frozen.inc()
            else:
                batch = self._hot_batch(block)
                self.hot_blocks_scanned += 1
                if self._m_hot is not None:
                    self._m_hot.inc()
            if batch.num_rows:
                yield batch

    def _pruned_by_zone_map(self, block) -> bool:
        for column_id, (low, high) in self.range_filters.items():
            zone = block.zone_maps.get(column_id)
            if zone is None:
                continue
            zone_min, zone_max = zone
            if low is not None and zone_max < low:
                return True
            if high is not None and zone_min > high:
                return True
        return False

    def _frozen_batch(self, block) -> ColumnBatch:
        record_batch = block_to_record_batch(block)
        columns: dict[int, Any] = {}
        for column_id in self.column_ids:
            spec = self.table.layout.columns[column_id]
            array = record_batch.columns[column_id]
            if isinstance(spec.dtype, FixedWidthType) and array.null_count == 0:
                columns[column_id] = array.to_numpy()
            else:
                columns[column_id] = array.to_pylist()
        return ColumnBatch(columns, record_batch.num_rows, from_frozen=True)

    def _hot_batch(self, block) -> ColumnBatch:
        txn = self.txn_manager.begin()
        rows: list[dict[int, Any]] = []
        for offset in range(block.insert_head):
            slot = TupleSlot(block.block_id, offset)
            if (
                not block.allocation_bitmap.get(offset)
                and block.version_ptrs[offset] is None
            ):
                continue
            row = self.table.select(txn, slot, self.column_ids)
            if row is not None:
                rows.append(row.to_dict())
        self.txn_manager.commit(txn)
        columns: dict[int, Any] = {}
        for column_id in self.column_ids:
            spec = self.table.layout.columns[column_id]
            values = [r[column_id] for r in rows]
            if (
                isinstance(spec.dtype, FixedWidthType)
                and spec.dtype.numpy_dtype.kind in "iuf"
                and all(v is not None for v in values)
            ):
                columns[column_id] = np.array(values, dtype=spec.dtype.numpy_dtype)
            else:
                columns[column_id] = values
        return ColumnBatch(columns, len(rows), from_frozen=False)
