"""Vectorized analytical reads over Arrow-native storage.

The payoff of storing data in Arrow: analytical operators run directly on
the block buffers with numpy-speed vectorized execution, no export step at
all.  Frozen blocks are scanned in place under the reader counter; hot
blocks fall back to transactional materialization — the same hot/cold split
the export layer uses (Section 4.1: "the DBMS can ignore checking the
version column for every tuple and scan large portions of the database
in-place").
"""

from repro.query.scan import ArrowColumnView, ColumnBatch, TableScanner
from repro.query.ops import (
    AggregateResult,
    aggregate,
    filter_mask,
    filter_masks,
    group_by_aggregate,
)
from repro.query.builder import Query

__all__ = [
    "AggregateResult",
    "ArrowColumnView",
    "ColumnBatch",
    "Query",
    "TableScanner",
    "aggregate",
    "filter_mask",
    "filter_masks",
    "group_by_aggregate",
]
