"""The block state machine up close: HOT → COOLING → FREEZING → FROZEN.

Walks one block through the full lifecycle of Section 4 — cold detection
via GC epochs, the two-phase transform, a user write preempting a COOLING
block, and the relaxed varlen entries being rewritten to reference the
gathered Arrow buffer.

Run:  python examples/hot_cold_lifecycle.py
"""

from repro import ColumnSpec, Database, INT64, UTF8
from repro.storage.constants import BlockState
from repro.storage.tuple_slot import TupleSlot
from repro.storage.varlen import read_entry


def show(block, label: str) -> None:
    print(f"  [{label}] state={block.state.name}, live={block.allocation_bitmap.count_set()}")


def main() -> None:
    db = Database(cold_threshold_epochs=2)
    info = db.create_table(
        "events",
        [ColumnSpec("id", INT64), ColumnSpec("payload", UTF8)],
        block_size=1 << 14,
        watch_cold=True,
    )
    table = info.table

    print("1. fill two blocks, delete 30% — the relaxed format absorbs everything")
    with db.transaction() as txn:
        slots = [
            table.insert(txn, {0: i, 1: f"event-{i}-with-an-out-of-line-payload"})
            for i in range(table.layout.num_slots * 2)
        ]
    with db.transaction() as txn:
        for slot in slots[:: 3]:
            table.delete(txn, slot)
    block = table.blocks[0]
    show(block, "after load")

    print("\n2. GC epochs pass; the access observer flags the blocks as cold")
    db.gc.run()  # observes the modifications
    db.gc.run()
    db.gc.run()  # threshold reached: blocks are queued
    print(f"  transform queue depth: {len(db.access_observer.queue)}")

    print("\n3. phase 1 (compaction) runs; blocks go COOLING before the commit")
    db.transformer.process_queue()
    show(block, "after compaction")

    print("\n4. a user write preempts COOLING back to HOT — no stall, no abort")
    with db.transaction() as txn:
        table.update(txn, TupleSlot(block.block_id, 0), {1: "preempting write!!"})
    show(block, "after preemption")

    print("\n5. the pipeline re-detects, re-compacts, and this time freezes")
    for _ in range(6):
        db.run_maintenance()
    show(block, "after pipeline")

    print("\n6. long varlen entries now reference the gathered Arrow buffer")
    frozen = next(b for b in table.blocks if b.state is BlockState.FROZEN)
    column_id = table.layout.index_of("payload")
    entry = next(
        e
        for slot in range(16)
        if not (e := read_entry(frozen.varlen_entry_view(column_id, slot))).is_inlined
    )
    print(f"  entry: size={entry.size}, owns_buffer={entry.owns_buffer} "
          f"(non-owning = points into the canonical Arrow values buffer)")
    offsets, values = frozen.gathered[column_id]
    print(f"  gathered column: {len(offsets) - 1} offsets, {len(values)} value bytes")

    print("\n7. transactional reads keep working against the frozen block")
    reader = db.begin()
    row = table.select(reader, TupleSlot(frozen.block_id, 3))
    print(f"  select -> {row.to_dict()}")
    db.commit(reader)


if __name__ == "__main__":
    main()
