"""Compare the four export mechanisms of Section 5 on one table.

Builds an ORDER_LINE-shaped table, freezes it, and exports it through the
row-based PostgreSQL protocol, the vectorized wire protocol, Arrow Flight,
and simulated client-side RDMA — printing the Figure 15-style breakdown of
where the time goes.

Run:  python examples/export_comparison.py
"""

import random

from repro import Database
from repro.bench.reporting import format_table
from repro.export import TableExporter
from repro.workloads.tpcc.schema import TPCC_TABLES


def main() -> None:
    db = Database(logging_enabled=False, cold_threshold_epochs=1)
    info = db.create_table(
        "order_line", TPCC_TABLES["order_line"], block_size=1 << 15, watch_cold=True
    )
    rng = random.Random(7)
    print("loading order lines ...")
    with db.transaction() as txn:
        for i in range(12_000):
            info.table.insert(txn, {
                0: i // 10, 1: 1 + i % 10, 2: 1, 3: i % 15,
                4: rng.randint(1, 1000), 5: 1, 6: 0, 7: 5,
                8: rng.uniform(1.0, 9999.0),
                9: "".join(rng.choice("abcdef0123456789") for _ in range(24)),
            })
    db.freeze_table("order_line")
    frozen = sum(1 for b in info.table.blocks if b.state.name == "FROZEN")
    print(f"{len(info.table.blocks)} blocks, {frozen} frozen\n")

    exporter = TableExporter(db.txn_manager, info.table)
    rows = []
    for method in ("postgres", "vectorized", "flight", "rdma"):
        r = exporter.export(method)
        rows.append((
            method,
            f"{r.throughput_mb_per_sec:,.1f}",
            f"{r.serialization_seconds * 1000:.1f}",
            f"{r.wire_seconds * 1000:.2f}",
            f"{r.client_seconds * 1000:.1f}",
            f"{r.wire_bytes:,}",
        ))
    print(format_table(
        "Export comparison (server CPU measured, wire modeled at 10 GbE)",
        ["method", "MB/s", "server ms", "wire ms", "client ms", "wire bytes"],
        rows,
    ))
    print(
        "\nThe zero-copy paths win because the storage format IS the wire "
        "format:\nno per-value serialization on the server, no parsing on the client."
    )
    print(
        "\nTo serve these exports over a real socket (with admission control,"
        "\nhealth-gated writes, and graceful drain), see examples/"
        "service_frontdoor.py\nor run:  python -m repro.service serve"
    )


if __name__ == "__main__":
    main()
