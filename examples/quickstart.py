"""Quickstart: transactions on Arrow-native storage.

Creates a database, runs transactions with snapshot isolation, freezes the
table into canonical Arrow, and reads it back zero-copy — the end-to-end
story of the paper in ~60 lines.

Run:  python examples/quickstart.py
"""

from repro import ColumnSpec, Database, INT64, UTF8, FLOAT64
from repro.export.flight import client_receive, export_stream
from repro.storage.constants import BlockState


def main() -> None:
    db = Database(cold_threshold_epochs=1)
    items = db.create_table(
        "item",
        [
            ColumnSpec("i_id", INT64),
            ColumnSpec("i_name", UTF8),
            ColumnSpec("i_price", FLOAT64),
        ],
        block_size=1 << 16,
        watch_cold=True,  # opt into the hot->cold transformation pipeline
    )
    db.create_index("item", "pk", ["i_id"], kind="hash")

    # --- OLTP: insert, update, snapshot isolation -----------------------
    with db.transaction() as txn:
        for i in range(10_000):
            items.table.insert(txn, {0: i, 1: f"item-{i}-description", 2: 1.0 + i % 100})

    reader = db.begin()  # this snapshot predates the update below
    with db.transaction() as txn:
        [(slot, row)] = db.catalog.index("item", "pk").lookup(txn, (42,))
        items.table.update(txn, slot, {2: 99.99})

    fresh = db.begin()
    pk = db.catalog.index("item", "pk")
    old_price = pk.lookup(reader, (42,))[0][1].get(2)
    new_price = pk.lookup(fresh, (42,))[0][1].get(2)
    print(f"snapshot isolation: old reader sees {old_price}, new reader sees {new_price}")
    db.commit(reader)
    db.commit(fresh)

    # --- Transformation: relax -> canonical Arrow ------------------------
    db.freeze_table("item")
    states = {s.name: n for s, n in items.table.block_states().items() if n}
    print(f"block states after the pipeline: {states}")

    # --- Export: zero-copy Arrow out -------------------------------------
    stream = export_stream(db.txn_manager, items.table)
    arrow_table = client_receive(stream.payload)
    print(
        f"exported {arrow_table.num_rows} rows in {len(stream.payload):,} bytes "
        f"({stream.frozen_blocks} blocks zero-copy, "
        f"{stream.materialized_blocks} materialized)"
    )
    prices = arrow_table.column_values("i_price")
    print(f"mean price straight off the Arrow buffers: {sum(prices) / len(prices):.2f}")

    # --- Writes flip frozen blocks back to hot ---------------------------
    with db.transaction() as txn:
        [(slot, _)] = pk.lookup(txn, (0,))
        items.table.update(txn, slot, {1: "rewritten after freezing"})
    hot = sum(1 for b in items.table.blocks if b.state is BlockState.HOT)
    print(f"{hot} block(s) flipped back to HOT by the write — the pipeline will re-freeze them")


if __name__ == "__main__":
    main()
