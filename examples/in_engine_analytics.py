"""Analytics without export: vectorized queries on frozen blocks.

The deepest version of the paper's pitch — when storage *is* Arrow, the
analytical operators can run inside the engine on the very same buffers
transactions write to, at numpy speed, while OLTP continues.

Run:  python examples/in_engine_analytics.py
"""

import random
import time

from repro import ColumnSpec, Database, FLOAT64, INT64, UTF8
from repro.query import TableScanner, aggregate, group_by_aggregate


def main() -> None:
    db = Database(logging_enabled=False, cold_threshold_epochs=1)
    info = db.create_table(
        "orders",
        [
            ColumnSpec("region", INT64),
            ColumnSpec("amount", FLOAT64),
            ColumnSpec("memo", UTF8),
        ],
        block_size=1 << 16,
        watch_cold=True,
    )
    rng = random.Random(1)
    print("loading 60k orders ...")
    with db.transaction() as txn:
        for i in range(60_000):
            info.table.insert(txn, {
                0: rng.randint(1, 8),
                1: round(rng.uniform(1.0, 500.0), 2),
                2: f"order-{i}",
            })
    db.freeze_table("orders")
    frozen = sum(1 for b in info.table.blocks if b.state.name == "FROZEN")
    print(f"{len(info.table.blocks)} blocks, {frozen} frozen\n")

    # -- a full-column aggregate straight off the block buffers ------------
    began = time.perf_counter()
    scanner = TableScanner(db.txn_manager, info.table, column_ids=[0, 1])
    result = aggregate(scanner, value_column=1)
    elapsed = time.perf_counter() - began
    print(
        f"SELECT count, sum, avg, min, max FROM orders  "
        f"[{elapsed * 1000:.1f} ms, {scanner.frozen_blocks_scanned} blocks in-place]"
    )
    print(
        f"  count={result.count}  sum={result.total:,.2f}  "
        f"avg={result.mean:.2f}  min={result.minimum}  max={result.maximum}"
    )

    # -- filtered aggregate (vectorized predicate on a numpy view) ---------
    began = time.perf_counter()
    scanner = TableScanner(db.txn_manager, info.table, column_ids=[0, 1])
    high_value = aggregate(
        scanner, value_column=1, filter_column=1, predicate=lambda col: col > 400.0
    )
    elapsed = time.perf_counter() - began
    print(
        f"\nSELECT ... WHERE amount > 400  [{elapsed * 1000:.1f} ms]"
        f"\n  count={high_value.count}  sum={high_value.total:,.2f}"
    )

    # -- group by -----------------------------------------------------------
    began = time.perf_counter()
    scanner = TableScanner(db.txn_manager, info.table, column_ids=[0, 1])
    groups = group_by_aggregate(scanner, key_column=0, value_column=1)
    elapsed = time.perf_counter() - began
    print(f"\nSELECT region, sum(amount) GROUP BY region  [{elapsed * 1000:.1f} ms]")
    for region in sorted(groups):
        print(f"  region {region}: ${groups[region].total:>12,.2f}  "
              f"({groups[region].count} orders)")

    # -- OLTP keeps running; hot blocks transparently materialize ----------
    with db.transaction() as txn:
        info.table.insert(txn, {0: 1, 1: 123.45, 2: "late arrival"})
    scanner = TableScanner(db.txn_manager, info.table, column_ids=[1])
    after = aggregate(scanner, value_column=1)
    print(
        f"\nafter one more insert: count={after.count} "
        f"({scanner.frozen_blocks_scanned} blocks in-place, "
        f"{scanner.hot_blocks_scanned} materialized)"
    )


if __name__ == "__main__":
    main()
