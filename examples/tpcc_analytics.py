"""TPC-C front end, analytics out the back — the paper's pipeline vision.

Runs the TPC-C mix against the engine while the transformation pipeline
freezes cold ORDER_LINE blocks, then exports the table as Arrow with zero
serialization and runs a dataframe-style aggregation (revenue per district)
directly on the columnar buffers.

Run:  python examples/tpcc_analytics.py
"""

from collections import defaultdict

from repro import Database
from repro.export.flight import client_receive, export_stream
from repro.workloads.tpcc import TpccConfig, TpccDriver


def main() -> None:
    db = Database(cold_threshold_epochs=1)
    driver = TpccDriver(db, TpccConfig.small())
    print("loading TPC-C ...")
    driver.setup()

    print("running the standard mix with the transformation pipeline on ...")
    run = driver.run(transactions_per_worker=600, maintenance_every=50)
    print(
        f"  {run.committed} committed, {run.aborted} aborted "
        f"({run.throughput:,.0f} txn/s)"
    )
    print(f"  per profile: {run.per_profile}")
    db.run_maintenance(passes=4)
    for table, states in driver.block_state_report().items():
        populated = {k: v for k, v in states.items() if v}
        print(f"  {table:12s} blocks: {populated}")

    # ------------------------------------------------------------------ #
    # The analytics side: land ORDER_LINE as Arrow, aggregate on columns. #
    # ------------------------------------------------------------------ #
    order_line = db.catalog.table("order_line")
    stream = export_stream(db.txn_manager, order_line)
    arrow = client_receive(stream.payload)
    print(
        f"\nexported order_line: {arrow.num_rows} rows, "
        f"{len(stream.payload):,} bytes, {stream.frozen_blocks} zero-copy blocks"
    )

    revenue = defaultdict(float)
    quantities = defaultdict(int)
    districts = arrow.column_values("ol_d_id")
    amounts = arrow.column_values("ol_amount")
    counts = arrow.column_values("ol_quantity")
    for d_id, amount, quantity in zip(districts, amounts, counts):
        revenue[d_id] += amount
        quantities[d_id] += quantity
    print("\nrevenue per district (computed on exported Arrow columns):")
    for d_id in sorted(revenue):
        print(f"  district {d_id}: ${revenue[d_id]:>12,.2f}  ({quantities[d_id]} units)")


if __name__ == "__main__":
    main()
