"""The transactional front door, end to end: serve, load, overload, drain.

Boots the network service over an engine with a YCSB-style table, then
walks the robustness story on real sockets:

1. point reads and durable writes through the postgres-wire row codec,
2. a whole-table Arrow-IPC export,
3. an open-loop burst at 2x the admission limit — watch the explicit
   sheds come back instead of latency collapse,
4. a graceful drain: in-flight work finishes, new work is refused,
   nothing acknowledged is lost.

Run:  python examples/service_frontdoor.py

For a long-running server use the CLI instead:

    python -m repro.service serve --port 8650 --obs-port 8642
    python -m repro.service loadgen --port 8650 --rate 500
"""

from repro import ColumnSpec, Database
from repro.arrowfmt.datatypes import INT64, UTF8
from repro.service import (
    LoadgenConfig,
    ServerThread,
    ServiceClient,
    ServiceConfig,
    run_loadgen_sync,
)


def main() -> None:
    db = Database()
    info = db.create_table(
        "usertable", [ColumnSpec("key", INT64), ColumnSpec("field0", UTF8)]
    )
    db.create_index("usertable", "by_key", ["key"])
    with db.transaction() as txn:
        for key in range(500):
            info.table.insert(txn, {0: key, 1: f"v{key}"})

    config = ServiceConfig(
        max_inflight=4, max_queue=8, tenant_rate=300.0, tenant_burst=50.0
    )
    server = ServerThread(db, config).start()
    print(f"front door listening on 127.0.0.1:{server.port}\n")

    with ServiceClient(port=server.port) as client:
        row = client.read("usertable", "by_key", (42,))
        print(f"read key 42      -> {row.rows()}")
        wrote = client.write(
            "usertable", "by_key", (42,), {"key": 42, "field0": "updated"}
        )
        print(f"write key 42     -> {wrote.meta}")
        exported = client.export("usertable")
        table = exported.arrow_table()
        print(f"arrow export     -> {table.num_rows} rows, "
              f"{len(exported.payload):,} IPC bytes")

    print("\noffering 600 req/s against a 300 req/s admission limit ...")
    result = run_loadgen_sync(LoadgenConfig(
        port=server.port, rate=600.0, duration=1.5, keys=500, seed=3,
    ))
    print(f"loadgen          -> {result.summary()}")

    print("\ndraining ...")
    server.stop()
    db.close()
    print("drained clean; every acknowledged write was durable before its ack")


if __name__ == "__main__":
    main()
