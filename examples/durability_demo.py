"""Durability: write-ahead logging, group commit, checkpoints, recovery.

Simulates the full crash-recovery story: transactions become durable
through the log manager's flush callbacks, a checkpoint bounds the log, and
a "crashed" database is rebuilt from checkpoint + log suffix.

Run:  python examples/durability_demo.py
"""

from repro import ColumnSpec, Database, INT64, UTF8


def make_schema(db: Database) -> None:
    db.create_table(
        "ledger",
        [ColumnSpec("id", INT64), ColumnSpec("entry", UTF8)],
        block_size=1 << 14,
    )


def main() -> None:
    db = Database()
    make_schema(db)
    ledger = db.catalog.get("ledger")

    # --- group commit and the speculative-commit rule --------------------
    db.log_manager.synchronous = False  # queue commits, flush in groups
    fired = []
    with db.transaction() as txn:
        ledger.table.insert(txn, {0: 1, 1: "first entry"})
    txn_obj = txn
    txn_obj.on_durable(lambda: fired.append("durable!"))
    print(f"committed, durable yet? {txn_obj.is_durable} (results must be withheld)")
    persisted = db.log_manager.flush()
    print(f"flush persisted {persisted} txn(s); callbacks fired: {fired}")

    # --- more history, then a checkpoint ----------------------------------
    db.log_manager.synchronous = True
    slots = {}
    with db.transaction() as txn:
        for i in range(2, 12):
            slots[i] = ledger.table.insert(txn, {0: i, 1: f"entry {i}"})
    print(f"\nlog before checkpoint: {db.log_manager.bytes_written:,} bytes")
    checkpoint = db.checkpoint()
    print(f"checkpoint: {len(checkpoint):,} bytes; log truncated to "
          f"{len(db.log_contents())} bytes")

    # --- post-checkpoint activity (this is what the log suffix protects) --
    with db.transaction() as txn:
        ledger.table.update(txn, slots[5], {1: "entry 5, amended after checkpoint"})
        ledger.table.delete(txn, slots[9])
        ledger.table.insert(txn, {0: 100, 1: "entry 100, post-checkpoint"})
    # An aborted transaction leaves no trace in the log:
    doomed = db.begin()
    ledger.table.insert(doomed, {0: 666, 1: "never happened"})
    db.abort(doomed)
    db.quiesce()
    log_suffix = db.log_contents()
    print(f"log suffix after checkpoint: {len(log_suffix):,} bytes")

    # --- CRASH.  Rebuild from checkpoint + log suffix ----------------------
    print("\n-- simulated crash: rebuilding a fresh database --")
    recovered = Database()
    make_schema(recovered)
    replayed = recovered.recover_with_checkpoint(checkpoint, log_suffix)
    print(f"replayed {replayed} post-checkpoint transaction(s)")

    reader = recovered.begin()
    rows = sorted(
        (row.get(0), row.get(1))
        for _, row in recovered.catalog.table("ledger").scan(reader)
    )
    recovered.commit(reader)
    for row_id, entry in rows:
        print(f"  {row_id:4d}  {entry}")
    assert (5, "entry 5, amended after checkpoint") in rows
    assert all(row_id != 9 for row_id, _ in rows), "deleted entry resurrected!"
    assert all(row_id != 666 for row_id, _ in rows), "aborted entry resurrected!"
    print("\nrecovered state verified: amendment applied, delete honored, "
          "aborted txn absent")


if __name__ == "__main__":
    main()
