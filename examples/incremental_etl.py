"""Replacing the nightly ETL job with incremental Arrow exports.

The paper's introduction: "Many organizations employ costly extract-
transform-load (ETL) pipelines that run only nightly, introducing delays
to analytics."  With Arrow-native storage and per-block freeze timestamps,
an export can ship only what changed since the last one — O(changed data),
not O(database) — and the analytics side folds the deltas in.

Run:  python examples/incremental_etl.py
"""

import random

from repro import ColumnSpec, Database, FLOAT64, INT64
from repro.export.flight import client_receive, incremental_export


def main() -> None:
    db = Database(cold_threshold_epochs=1)
    info = db.create_table(
        "events",
        [ColumnSpec("id", INT64), ColumnSpec("value", FLOAT64)],
        block_size=1 << 14,
        watch_cold=True,
    )
    index = db.create_index("events", "pk", ["id"])
    rng = random.Random(3)

    print("day 0: bulk load 20k events, freeze, full export")
    with db.transaction() as txn:
        for i in range(20_000):
            info.table.insert(txn, {0: i, 1: rng.uniform(0, 100)})
    db.freeze_table("events")

    warehouse: dict[int, float] = {}  # the analytics side's copy

    def apply(stream) -> None:
        table = client_receive(stream.payload)
        for row_id, value in zip(table.column_values("id"), table.column_values("value")):
            warehouse[row_id] = value

    stream = incremental_export(db.txn_manager, info.table, since=0)
    apply(stream)
    cursor = stream.cursor
    print(f"  shipped {len(stream.payload):,} bytes "
          f"({stream.frozen_blocks_shipped} frozen blocks); warehouse rows: {len(warehouse)}")

    for day in (1, 2):
        print(f"\nday {day}: updates to the recent (hot) key range + inserts, "
              "then delta export")
        with db.transaction() as txn:
            for _ in range(200):
                # Real workloads skew: today's churn clusters on recent keys.
                key = rng.randrange(19_000, 20_000)
                [(slot, _)] = index.lookup(txn, (key,))
                info.table.update(txn, slot, {1: rng.uniform(0, 100)})
            for i in range(50):
                info.table.insert(txn, {0: 20_000 + day * 100 + i, 1: 0.0})
        db.freeze_table("events")

        stream = incremental_export(db.txn_manager, info.table, since=cursor)
        apply(stream)
        cursor = stream.cursor
        print(
            f"  shipped {len(stream.payload):,} bytes — "
            f"{stream.frozen_blocks_shipped} changed frozen + "
            f"{stream.hot_blocks_shipped} hot blocks; "
            f"{stream.blocks_skipped} unchanged blocks skipped"
        )

    # verify the warehouse equals the engine, row for row
    reader = db.begin()
    engine = {row.get(0): row.get(1) for _, row in info.table.scan(reader)}
    db.commit(reader)
    assert warehouse == engine, "delta pipeline diverged!"
    print(f"\nwarehouse verified identical to the engine: {len(engine)} rows. "
          "No nightly ETL required.")


if __name__ == "__main__":
    main()
